//! Degraded-mode control loop: a [`Policy`] wrapper that never aborts a
//! slot.
//!
//! The paper's controller re-optimizes at every slot boundary (§III); an
//! aborted slot means no dispatch decision and zero revenue for a whole
//! hour. This module trades optimality for availability with a fallback
//! ladder, attempted in order until one rung produces a decision:
//!
//! 1. **Exact** — the §IV optimizer under the caller's iteration/node
//!    budgets ([`ResilientOptions::bb`]).
//! 2. **Bland retry** — on a *transient* failure (iteration limit,
//!    numerical trouble) only: one retry with Bland's anti-cycling rule
//!    from the first pivot and deterministically perturbed (slightly
//!    shrunk) arrival rates, the classic degeneracy escape.
//! 3. **Uniform levels** — the polynomial heuristic of
//!    [`crate::multilevel::solve_uniform_levels`] with default budgets.
//! 4. **Balanced** — the paper's §V-A baseline; price-greedy, solver-free.
//! 5. **Replay** — the last successful dispatch scaled down to the current
//!    offered rates. Per `(class, front-end)` the replayed group is scaled
//!    by `min(1, offered_now / dispatched_then)`, so Eq. 7 (dispatch ≤
//!    offered) holds and server loads can only shrink, preserving the
//!    Eq. 6 delay bounds; φ is kept, so Eq. 8 holds and servers unused by
//!    the last-good decision stay powered off. With no last-good decision
//!    it dispatches nothing (all servers off) — the tier is infallible,
//!    which is what makes the ladder abort-free.
//!
//! Each decision pushes a [`SlotHealth`] record through
//! [`crate::SlotContext::record_health`], which the driver surfaces on the
//! [`crate::SlotOutcome`]; tier transitions and fault counts additionally
//! land on the slot context's observability recorder.
//!
//! The module also hosts [`ChaosPolicy`], the fault-injection wrapper used
//! by the robustness experiments. It lives here rather than in
//! `palb_workload::fault` (where the data-level injectors live) because it
//! wraps the [`Policy`] trait and the workload crate sits *below* this one
//! in the dependency order.

use palb_cluster::{ClassId, FrontEndId, System};
use palb_lp::{LpError, PivotRule, SolveOptions};
use palb_workload::fault::SolverFaultSchedule;

use crate::balanced::balanced_dispatch;
use crate::driver::{Policy, SlotContext};
use crate::error::CoreError;
use crate::formulate::{LevelAssignment, WorkspacePool};
use crate::model::{Dims, Dispatch};
use crate::multilevel::{solve_uniform_levels, SolverStats};
use crate::obs::{names, record_solver_stats, spans, Recorder};
use crate::solver::{solve_with_in, SolverConfig};

/// A rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The exact §IV optimizer under the configured budget.
    Exact,
    /// Retry of the exact solve with Bland's rule and perturbed rates.
    BlandRetry,
    /// The uniform-level heuristic.
    UniformLevels,
    /// The paper's Balanced baseline.
    Balanced,
    /// Replay of the last good dispatch, scaled to current rates.
    Replay,
}

impl Tier {
    /// All tiers in ladder order (for histograms).
    pub const ALL: [Tier; 5] = [
        Tier::Exact,
        Tier::BlandRetry,
        Tier::UniformLevels,
        Tier::Balanced,
        Tier::Replay,
    ];

    /// Stable lowercase label used in reports and metric labels
    /// (`tier="exact"`).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::BlandRetry => "bland-retry",
            Tier::UniformLevels => "uniform-levels",
            Tier::Balanced => "balanced",
            Tier::Replay => "replay",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.label())
    }
}

/// Per-slot health telemetry attached to a decision.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlotHealth {
    /// Ladder rung that produced the decision; `None` for policies that
    /// are not degradation ladders (plain Optimized/Balanced).
    pub tier_used: Option<Tier>,
    /// Failed solve attempts before the decision was produced.
    pub retries: usize,
    /// Input repairs made by the driver's sanitization pass for this slot.
    pub sanitization_events: usize,
    /// Simplex pivots spent by the successful solve (0 for the solver-free
    /// tiers).
    pub solve_iterations: usize,
    /// Whether anything non-nominal happened: a fallback tier decided the
    /// slot, or the inputs needed repair.
    pub degraded: bool,
    /// LP-solver telemetry of the successful tier (all-zero for the
    /// solver-free tiers).
    pub solver: SolverStats,
    /// Age (in slots) of the replayed last-good decision when the replay
    /// rung decided the slot; `None` everywhere else. Slots where a stale
    /// replay degraded to Balanced also carry the age they rejected.
    pub replay_age_slots: Option<usize>,
}

impl SlotHealth {
    /// Folds a driver-side sanitization repair count into a slot's
    /// (possibly absent) health record. Zero repairs is the identity;
    /// any repair materializes a record and marks the slot degraded, so
    /// repaired inputs are never silent. Shared by the sequential driver
    /// and the rayon slot runner so both paths report identically.
    pub fn merge_sanitization(health: Option<SlotHealth>, repairs: usize) -> Option<SlotHealth> {
        let mut health = health;
        if repairs > 0 {
            let h = health.get_or_insert_with(SlotHealth::default);
            h.sanitization_events = repairs;
            h.degraded = true;
        }
        health
    }
}

/// Tuning knobs for [`ResilientPolicy`].
#[derive(Debug, Clone)]
pub struct ResilientOptions {
    /// Configured solver for the primary tier (its `lp` field budgets
    /// every LP that tier solves; `budget` bounds the search). The kind
    /// may be exact, anytime, or portfolio — the ladder semantics are the
    /// same.
    pub solver: SolverConfig,
    /// LP options for the Bland-retry tier. Defaults to Bland's rule from
    /// the very first pivot with otherwise default budgets.
    pub retry_lp: SolveOptions,
    /// Relative shrink applied to arrival rates on the retry tier (breaks
    /// the exact degeneracy pattern that stalled the first attempt while
    /// staying within the true offered rates). Must be small and
    /// non-negative.
    pub perturbation: f64,
    /// Maximum age (in slots) a last-good decision may be replayed at.
    /// During a long outage `last_good` can be arbitrarily stale — beyond
    /// this bound the replay rung degrades to the solver-free Balanced
    /// baseline instead of replaying a plan shaped by a world that no
    /// longer exists. `None` (the default) never expires a replay.
    pub max_replay_age_slots: Option<usize>,
    /// Plan-delta damping under price volatility; `None` (the default)
    /// disables it. See [`DampingOptions`].
    pub damping: Option<DampingOptions>,
}

impl Default for ResilientOptions {
    fn default() -> Self {
        ResilientOptions {
            solver: SolverConfig::exact(),
            retry_lp: SolveOptions {
                rule: PivotRule::Bland,
                bland_after: Some(0),
                ..SolveOptions::default()
            },
            perturbation: 1e-6,
            max_replay_age_slots: None,
            damping: None,
        }
    }
}

/// Damps the price signal the ladder optimizes against when electricity
/// prices gyrate.
///
/// A per-slot myopic optimizer chases every price swing with a wholesale
/// plan shift; when prices oscillate (the scenario engine's
/// price-oscillation stack), that churn destabilizes the very grid whose
/// prices drive it — see "When Market Prices Drive the Load" in PAPERS.md.
/// The policy keeps an exponential moving average of each DC's observed
/// price, `s_l(t) = blend × s_l(t−1) + (1 − blend) × p_l(t)`, and whenever
/// the relative slot-over-slot price move of any DC exceeds
/// `volatility_threshold` it hands the ladder a system quoting `s_l(t)`
/// instead of `p_l(t)`.
///
/// Prices appear only in the profit objective, never in the feasibility
/// constraints (Eqs. 6–8 are price-free), so a plan solved against
/// smoothed prices is exactly feasible for the true system and serves the
/// full offered load — damping trades a sliver of spot-price optimality
/// for plan stability, it never sheds traffic.
#[derive(Debug, Clone)]
pub struct DampingOptions {
    /// Relative slot-over-slot price move (max across DCs) above which
    /// the ladder sees the smoothed feed. The §VI diurnal tariffs move
    /// ≲ 20% per hour, so the default 0.3 stays inert on clean days.
    pub volatility_threshold: f64,
    /// EMA memory: weight on the previous smoothed price, in [0, 1].
    /// `0` tracks the spot feed exactly (no damping); `1` freezes the
    /// first observed price.
    pub blend: f64,
}

impl Default for DampingOptions {
    fn default() -> Self {
        DampingOptions {
            volatility_threshold: 0.3,
            blend: 0.5,
        }
    }
}

/// The degraded-mode wrapper policy (see the module docs for the ladder).
#[derive(Default)]
pub struct ResilientPolicy {
    /// Ladder configuration.
    pub opts: ResilientOptions,
    chaos: Option<SolverFaultSchedule>,
    last_good: Option<Dispatch>,
    /// Schedule slot that produced `last_good` (drives replay staleness).
    last_good_slot: Option<usize>,
    /// `(slot, per-DC smoothed price)` of the damping EMA's last update.
    price_ema: Option<(usize, Vec<f64>)>,
    /// Persistent LP workspaces reused across slots and ladder tiers (the
    /// dispatch LP's structure is slot-invariant, so each slot is a
    /// coefficient patch); the parallel exact tier checks one out per
    /// worker. Pure solver cache: rebuilt on demand, never cloned, and
    /// invisible to results.
    wsp: WorkspacePool,
}

impl Clone for ResilientPolicy {
    fn clone(&self) -> Self {
        ResilientPolicy {
            opts: self.opts.clone(),
            chaos: self.chaos.clone(),
            last_good: self.last_good.clone(),
            last_good_slot: self.last_good_slot,
            price_ema: self.price_ema.clone(),
            wsp: WorkspacePool::default(), // cache: the clone rebuilds its own
        }
    }
}

impl std::fmt::Debug for ResilientPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientPolicy")
            .field("opts", &self.opts)
            .field("chaos", &self.chaos)
            .field("last_good", &self.last_good)
            .field("last_good_slot", &self.last_good_slot)
            .field("workspace_ready", &!self.wsp.is_empty())
            .finish()
    }
}

impl ResilientPolicy {
    /// A ladder with explicit options.
    pub fn new(opts: ResilientOptions) -> Self {
        ResilientPolicy {
            opts,
            ..ResilientPolicy::default()
        }
    }

    /// Attaches a deterministic solver-fault schedule: before each solver
    /// tier attempt, `schedule.fails(slot, attempt)` decides whether the
    /// attempt is forced to fail (used by the fault-tolerance
    /// experiments).
    pub fn with_chaos(mut self, schedule: SolverFaultSchedule) -> Self {
        self.chaos = Some(schedule);
        self
    }

    /// Enables plan-delta damping under price volatility (see
    /// [`DampingOptions`]). The policy reports itself as
    /// `"Resilient+damping"`.
    pub fn with_damping(mut self, damping: DampingOptions) -> Self {
        self.opts.damping = Some(damping);
        self
    }

    /// The last successful (non-replay) dispatch, if any.
    pub fn last_good(&self) -> Option<&Dispatch> {
        self.last_good.as_ref()
    }

    fn injected(&self, slot: usize, attempt: usize, tier: Tier) -> Option<CoreError> {
        match &self.chaos {
            Some(c) if c.fails(slot, attempt) => Some(CoreError::Solver {
                slot,
                tier,
                source: LpError::Numeric("injected solver fault".into()),
            }),
            _ => None,
        }
    }

    /// The primary tier: same structure as [`crate::OptimizedPolicy`],
    /// but under `opts.solver` budgets and against the policy's
    /// persistent LP workspace. Decisions always come off the cold
    /// full-solver path, so reuse changes wall-clock, never results.
    fn solve_exact(
        &mut self,
        system: &System,
        rates: &[Vec<f64>],
        slot: usize,
        lp: &SolveOptions,
        rec: &Recorder,
    ) -> Result<(Dispatch, usize, SolverStats), CoreError> {
        let one_level = system.classes.iter().all(|c| c.tuf.num_levels() == 1);
        if one_level {
            let dims = Dims::of(system);
            let assignment = LevelAssignment::uniform(&dims, 1);
            assignment.validate(system)?;
            let spec: Vec<(f64, f64)> = (0..dims.phi_len())
                .map(|idx| {
                    let tuf = &system.classes[idx / dims.total_servers].tuf;
                    (tuf.utility_of_level(1), tuf.deadline_of_level(1))
                })
                .collect();
            let mut wsp = self.wsp.acquire(system, rates, slot, &dims, &spec, lp)?;
            let s = wsp.solve_cold(lp);
            self.wsp.release(wsp);
            let s = s?;
            let stats = SolverStats {
                nodes_explored: 1,
                cold_solves: 1,
                cold_pivots: s.pivots,
                ..SolverStats::default()
            };
            // Standalone LP caller: nothing below records, so we do.
            record_solver_stats(rec, &stats);
            return Ok((s.dispatch, s.pivots, stats));
        }
        // The configured solver self-records through its config.
        let cfg = SolverConfig {
            lp: lp.clone(),
            obs: rec.clone(),
            ..self.opts.solver.clone()
        };
        let r = solve_with_in(&mut self.wsp, system, rates, slot, &cfg)?;
        Ok((r.solve.dispatch, r.solve.pivots, r.stats))
    }

    /// Deterministically shrinks every rate by up to `perturbation`
    /// (relative). Shrinking (never growing) keeps any dispatch feasible
    /// against the true offered rates.
    fn perturbed(&self, rates: &[Vec<f64>], slot: usize) -> Vec<Vec<f64>> {
        let eps = self.opts.perturbation;
        rates
            .iter()
            .enumerate()
            .map(|(s, row)| {
                row.iter()
                    .enumerate()
                    .map(|(k, &r)| {
                        // splitmix64-style hash of (slot, s, k) -> [0, 1).
                        let mut z = (slot as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(((s as u64) << 32) | k as u64);
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        let u = ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        r * (1.0 - eps * u)
                    })
                    .collect()
            })
            .collect()
    }

    /// The replay tier (infallible): the last good dispatch scaled down to
    /// the current offered rates, or the all-off zero dispatch. Returns
    /// the tier that actually decided — a last-good older than
    /// [`ResilientOptions::max_replay_age_slots`] (or with mismatched
    /// dims, after a scenario resized the system) degrades to the
    /// solver-free Balanced baseline instead — plus the replay age.
    fn replay(
        &self,
        system: &System,
        rates: &[Vec<f64>],
        slot: usize,
    ) -> (Dispatch, Tier, Option<usize>) {
        let Some(last) = &self.last_good else {
            return (Dispatch::zero(Dims::of(system)), Tier::Replay, None);
        };
        let age = self.last_good_slot.map(|s0| slot.saturating_sub(s0));
        let stale = matches!(
            (age, self.opts.max_replay_age_slots),
            (Some(a), Some(max)) if a > max
        );
        if stale || *last.dims() != Dims::of(system) {
            return (balanced_dispatch(system, rates, slot), Tier::Balanced, age);
        }
        (scaled_to_rates(last, rates), Tier::Replay, age)
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &mut self,
        ctx: &SlotContext<'_>,
        tier: Tier,
        retries: usize,
        solve_iterations: usize,
        solver: SolverStats,
        dispatch: Dispatch,
        replay_age_slots: Option<usize>,
    ) -> Result<Dispatch, CoreError> {
        if tier != Tier::Replay {
            self.last_good = Some(dispatch.clone());
            self.last_good_slot = Some(ctx.slot);
        }
        ctx.record_health(SlotHealth {
            tier_used: Some(tier),
            retries,
            sanitization_events: 0, // merged in by the driver
            solve_iterations,
            degraded: tier != Tier::Exact,
            solver,
            replay_age_slots,
        });
        Ok(dispatch)
    }

    /// Advances the damping EMA over the observed prices and, when the
    /// spot feed is gyrating past the volatility threshold, returns a
    /// clone of the system quoting the smoothed prices for the ladder to
    /// optimize against. `None` when damping is off or the feed is calm
    /// (the ladder then sees the true system). Re-deciding the same slot
    /// reuses the slot's existing EMA state rather than advancing twice.
    fn damped_system(&mut self, ctx: &SlotContext<'_>) -> Option<System> {
        let damping = self.opts.damping.as_ref()?;
        let observed: Vec<f64> = ctx
            .system
            .data_centers
            .iter()
            .map(|d| d.prices.price_at(ctx.slot))
            .collect();
        let w = damping.blend.clamp(0.0, 1.0);
        let smoothed = match self.price_ema.take() {
            Some((slot, prev)) if slot == ctx.slot && prev.len() == observed.len() => prev,
            Some((slot, prev)) if slot < ctx.slot && prev.len() == observed.len() => prev
                .iter()
                .zip(&observed)
                .map(|(s, p)| w * s + (1.0 - w) * p)
                .collect(),
            _ => observed.clone(),
        };
        self.price_ema = Some((ctx.slot, smoothed.clone()));
        if price_volatility(ctx.system, ctx.slot) <= damping.volatility_threshold {
            return None;
        }
        let mut sys = ctx.system.clone();
        for (dc, s) in sys.data_centers.iter_mut().zip(&smoothed) {
            dc.prices = palb_cluster::PriceSchedule::flat(*s, 1);
        }
        Some(sys)
    }
}

/// Scales a dispatch down to sit within the offered `rates`: per
/// `(class, front-end)` the group is scaled by
/// `min(1, offered_now / dispatched_then)`, so Eq. 7 holds and server
/// loads can only shrink, preserving the Eq. 6 delay bounds; φ is kept,
/// so Eq. 8 holds.
fn scaled_to_rates(last: &Dispatch, rates: &[Vec<f64>]) -> Dispatch {
    let dims = last.dims().clone();
    let mut d = last.clone();
    let mut scales = vec![1.0; dims.classes * dims.front_ends];
    for k in 0..dims.classes {
        for s in 0..dims.front_ends {
            let then = last.front_end_class_rate(ClassId(k), FrontEndId(s));
            if then > 0.0 {
                scales[k * dims.front_ends + s] = (rates[s][k] / then).min(1.0);
            }
        }
    }
    let (lambda, _phi) = d.raw_mut();
    for k in 0..dims.classes {
        for s in 0..dims.front_ends {
            let scale = scales[k * dims.front_ends + s];
            if scale < 1.0 {
                for sv in 0..dims.total_servers {
                    lambda[dims.lambda_idx(ClassId(k), FrontEndId(s), sv)] *= scale;
                }
            }
        }
    }
    d
}

/// The largest relative slot-over-slot price move across DCs at `slot`
/// (0 at slot 0 — there is no previous price to move from).
fn price_volatility(system: &System, slot: usize) -> f64 {
    if slot == 0 {
        return 0.0;
    }
    let mut vol: f64 = 0.0;
    for dc in &system.data_centers {
        let now = dc.prices.price_at(slot);
        let before = dc.prices.price_at(slot - 1);
        if before.abs() > f64::EPSILON {
            vol = vol.max(((now - before) / before).abs());
        }
    }
    vol
}

/// Whether a retry with different pivoting/perturbation could plausibly
/// succeed (maps [`LpError::is_transient`] through the core error type).
fn is_transient(e: &CoreError) -> bool {
    match e {
        CoreError::Lp(l) => l.is_transient(),
        CoreError::Solver { source, .. } => source.is_transient(),
        CoreError::Slot { source, .. } => is_transient(source),
        // A contained worker panic is worth a descent: the sequential and
        // heuristic tiers don't run the code path that panicked.
        CoreError::WorkerPanic => true,
        CoreError::Infeasible | CoreError::Model(_) => false,
    }
}

/// What one walk down the ladder produced: the deciding tier, failed
/// attempts, pivots and stats of the successful solve, the dispatch, and
/// the replay age when the replay rung was reached.
type LadderOutcome = (Tier, usize, usize, SolverStats, Dispatch, Option<usize>);

impl ResilientPolicy {
    /// Walks the degradation ladder for one slot without committing any
    /// state — `decide` applies damping to the outcome, then records it.
    fn ladder(&mut self, ctx: &SlotContext<'_>) -> LadderOutcome {
        let (system, rates, slot) = (ctx.system, ctx.rates, ctx.slot);
        // Tier 1: exact under budget.
        let lp = self.opts.solver.lp.clone();
        let exact = match self.injected(slot, 0, Tier::Exact) {
            Some(e) => Err(e),
            None => {
                let _tier = ctx.obs.span(spans::TIER);
                self.solve_exact(system, rates, slot, &lp, ctx.obs)
            }
        };
        let first_err = match exact {
            Ok((d, pivots, stats)) => return (Tier::Exact, 0, pivots, stats, d, None),
            Err(e) => e,
        };
        ctx.obs.counter_add(
            names::SOLVER_FAULTS_TOTAL,
            &[("tier", Tier::Exact.label())],
            1,
        );
        let mut retries = 1;

        // Tier 2: Bland + perturbation, only for transient failures.
        if is_transient(&first_err) {
            let retry = match self.injected(slot, 1, Tier::BlandRetry) {
                Some(e) => Err(e),
                None => {
                    let _tier = ctx.obs.span(spans::TIER);
                    let retry_lp = self.opts.retry_lp.clone();
                    let shrunk = self.perturbed(rates, slot);
                    self.solve_exact(system, &shrunk, slot, &retry_lp, ctx.obs)
                }
            };
            match retry {
                Ok((d, pivots, stats)) => {
                    return (Tier::BlandRetry, retries, pivots, stats, d, None)
                }
                Err(_) => {
                    ctx.obs.counter_add(
                        names::SOLVER_FAULTS_TOTAL,
                        &[("tier", Tier::BlandRetry.label())],
                        1,
                    );
                    retries += 1;
                }
            }
        }

        // Tier 3: uniform-level heuristic with default budgets.
        let uniform = match self.injected(slot, 2, Tier::UniformLevels) {
            Some(e) => Err(e),
            None => {
                let _tier = ctx.obs.span(spans::TIER);
                solve_uniform_levels(system, rates, slot)
            }
        };
        match uniform {
            Ok(r) => {
                // Standalone heuristic caller: records its own stats.
                record_solver_stats(ctx.obs, &r.stats);
                return (
                    Tier::UniformLevels,
                    retries,
                    r.solve.pivots,
                    r.stats,
                    r.solve.dispatch,
                    None,
                );
            }
            Err(_) => {
                ctx.obs.counter_add(
                    names::SOLVER_FAULTS_TOTAL,
                    &[("tier", Tier::UniformLevels.label())],
                    1,
                );
                retries += 1;
            }
        }

        // Tier 4: the solver-free Balanced baseline.
        match self.injected(slot, 3, Tier::Balanced) {
            Some(_) => {
                ctx.obs.counter_add(
                    names::SOLVER_FAULTS_TOTAL,
                    &[("tier", Tier::Balanced.label())],
                    1,
                );
                retries += 1;
            }
            None => {
                let d = balanced_dispatch(system, rates, slot);
                return (Tier::Balanced, retries, 0, SolverStats::default(), d, None);
            }
        }

        // Tier 5: replay — infallible by construction (may degrade to
        // Balanced when the last-good plan is stale or wrongly shaped).
        let (d, tier, age) = self.replay(system, rates, slot);
        (tier, retries, 0, SolverStats::default(), d, age)
    }
}

impl Policy for ResilientPolicy {
    fn name(&self) -> &str {
        if self.opts.damping.is_some() {
            "Resilient+damping"
        } else {
            "Resilient"
        }
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Result<Dispatch, CoreError> {
        let (tier, retries, pivots, stats, d, age) = match self.damped_system(ctx) {
            Some(smoothed) => {
                ctx.obs.counter_add(names::DAMPING_EVENTS_TOTAL, &[], 1);
                let ictx = SlotContext::new(&smoothed, ctx.rates, ctx.slot, ctx.obs);
                self.ladder(&ictx)
            }
            None => self.ladder(ctx),
        };
        self.finish(ctx, tier, retries, pivots, stats, d, age)
    }
}

/// Fault-injection wrapper: forces the wrapped policy's `decide` to fail
/// according to a [`SolverFaultSchedule`]. Wrapping the *un-resilient*
/// [`crate::OptimizedPolicy`] with this is how the experiments demonstrate
/// that a bare controller hard-aborts where [`ResilientPolicy`] degrades.
#[derive(Debug, Clone)]
pub struct ChaosPolicy<P> {
    inner: P,
    schedule: SolverFaultSchedule,
    name: String,
    /// Slot of the most recent `decide` call, for attempt counting.
    last_slot: Option<usize>,
    /// 0-based count of `decide` calls seen for `last_slot`.
    attempt: usize,
}

impl<P: Policy> ChaosPolicy<P> {
    /// Wraps `inner`, failing its decisions per `schedule`.
    pub fn new(inner: P, schedule: SolverFaultSchedule) -> Self {
        let name = format!("Chaos({})", inner.name());
        ChaosPolicy {
            inner,
            schedule,
            name,
            last_slot: None,
            attempt: 0,
        }
    }

    /// The `(slot, attempt)` coordinate the most recent `decide` drew its
    /// fault coin from, if any. Repeated decisions on the same slot (a
    /// caller retrying, or nested chaos wrappers re-entering) advance the
    /// attempt counter so each retry draws a fresh coin — the same
    /// contract `ResilientPolicy`'s internal ladder uses.
    pub fn last_attempt(&self) -> Option<(usize, usize)> {
        self.last_slot.map(|s| (s, self.attempt))
    }

    /// The wrapped policy (e.g. to inspect a nested chaos layer).
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Policy> Policy for ChaosPolicy<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Result<Dispatch, CoreError> {
        let attempt = match self.last_slot {
            Some(s) if s == ctx.slot => self.attempt + 1,
            _ => 0,
        };
        self.last_slot = Some(ctx.slot);
        self.attempt = attempt;
        if self.schedule.fails(ctx.slot, attempt) {
            return Err(CoreError::Solver {
                slot: ctx.slot,
                tier: Tier::Exact,
                source: LpError::Numeric("injected solver fault".into()),
            });
        }
        self.inner.decide(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_with, BalancedPolicy, OptimizedPolicy, RunOptions};
    use crate::evaluate::evaluate;
    use crate::formulate::solve_fixed_levels_with;
    use crate::model::check_feasible;
    use palb_cluster::presets;
    use palb_workload::synthetic::constant_trace;

    #[test]
    fn healthy_inputs_use_the_exact_tier_and_match_optimized() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 2);
        let res = run_with(
            &mut ResilientPolicy::default(),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        let opt = run_with(
            &mut OptimizedPolicy::exact(),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        assert!(
            (res.total_net_profit() - opt.total_net_profit()).abs()
                < 1e-9 * (1.0 + opt.total_net_profit().abs())
        );
        for s in &res.slots {
            let h = s.health.as_ref().expect("resilient slots carry health");
            assert_eq!(h.tier_used, Some(Tier::Exact));
            assert_eq!(h.retries, 0);
            assert!(!h.degraded);
            assert!(h.solve_iterations > 0);
        }
    }

    #[test]
    fn iteration_limit_falls_through_to_uniform_levels() {
        // Cripple both the exact budget and the retry budget: 1 pivot is
        // never enough for the §V LP, so tier 3 (default budgets) decides.
        let tiny_budget = SolveOptions {
            max_iters: Some(1),
            ..SolveOptions::default()
        };
        let opts = ResilientOptions {
            solver: SolverConfig::exact().lp(tiny_budget.clone()),
            retry_lp: SolveOptions {
                rule: PivotRule::Bland,
                bland_after: Some(0),
                max_iters: Some(1),
                ..SolveOptions::default()
            },
            ..ResilientOptions::default()
        };
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 1);
        let mut policy = ResilientPolicy::new(opts);
        let r = run_with(&mut policy, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        let h = r.slots[0].health.as_ref().unwrap();
        assert_eq!(h.tier_used, Some(Tier::UniformLevels));
        assert_eq!(h.retries, 2, "exact and retry should both have failed");
        assert!(h.degraded);
        assert!(r.total_net_profit() > 0.0);
    }

    #[test]
    fn crippled_exact_surfaces_iteration_limit_without_the_ladder() {
        // The same tiny budget makes the *bare* solver abort, which is
        // exactly what the ladder protects against.
        let sys = presets::section_v();
        let dims = Dims::of(&sys);
        let rates = presets::section_v_low_arrivals();
        let tiny = SolveOptions {
            max_iters: Some(1),
            ..SolveOptions::default()
        };
        let err =
            solve_fixed_levels_with(&sys, &rates, 0, &LevelAssignment::uniform(&dims, 1), &tiny)
                .unwrap_err();
        assert!(
            matches!(&err, CoreError::Lp(LpError::IterationLimit { .. })),
            "got {err:?}"
        );
        assert!(is_transient(&err));
    }

    #[test]
    fn chaos_on_all_solver_tiers_lands_on_balanced() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 1);
        // Probability 1: every solver attempt fails; balanced also draws a
        // coin... with p = 1.0 even balanced is vetoed, so replay decides.
        let mut policy = ResilientPolicy::default().with_chaos(SolverFaultSchedule::new(1.0, 7));
        let r = run_with(&mut policy, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        let h = r.slots[0].health.as_ref().unwrap();
        assert_eq!(h.tier_used, Some(Tier::Replay));
        // No last-good decision: the replay dispatches nothing.
        assert_eq!(r.slots[0].dispatched, 0.0);
        assert_eq!(r.slots[0].powered_on, vec![0, 0, 0]);
    }

    #[test]
    fn replay_scales_last_good_to_current_rates() {
        let sys = presets::section_v();
        let low = presets::section_v_low_arrivals();
        // Slot 0 decides normally; slot 1's solver attempts all fail but
        // balanced is only vetoed on slot 1 by the handcrafted schedule.
        // Easier: drive decide() by hand.
        let mut policy = ResilientPolicy::default();
        let rec = Recorder::noop();
        let ctx0 = SlotContext::new(&sys, &low, 0, &rec);
        let d0 = policy.decide(&ctx0).unwrap();
        assert!(ctx0.take_health().is_some());
        assert!(policy.last_good().is_some());

        // Halve the offered rates and force replay via total chaos.
        policy.chaos = Some(SolverFaultSchedule::new(1.0, 3));
        let halved: Vec<Vec<f64>> = low
            .iter()
            .map(|row| row.iter().map(|r| r * 0.5).collect())
            .collect();
        let ctx1 = SlotContext::new(&sys, &halved, 1, &rec);
        let d1 = policy.decide(&ctx1).unwrap();
        let h = ctx1.take_health().unwrap();
        assert_eq!(h.tier_used, Some(Tier::Replay));
        // Eq. 7: replayed dispatch within the halved offered rates.
        check_feasible(&sys, &halved, &d1, false, 1e-6).unwrap();
        assert!(d1.total_dispatched() <= 0.5 * d0.total_dispatched() + 1e-9);
        assert!(d1.total_dispatched() > 0.0);
        // Still economically evaluable.
        let out = evaluate(&sys, &halved, 1, &d1);
        assert!(out.net_profit.is_finite());
    }

    #[test]
    fn chaos_policy_fails_bare_optimized_runs() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 10);
        let schedule = SolverFaultSchedule::new(0.5, 11);
        let mut bare = ChaosPolicy::new(OptimizedPolicy::exact(), schedule.clone());
        let err = run_with(&mut bare, &sys, &trace, &RunOptions::at(0)).unwrap_err();
        assert!(matches!(err, CoreError::Solver { .. }));
        // The same chaos stream cannot abort the resilient ladder.
        let mut guarded = ResilientPolicy::default().with_chaos(schedule);
        let r = run_with(&mut guarded, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        assert_eq!(r.slots.len(), 10);
    }

    #[test]
    fn persistent_workspace_is_bitwise_invisible_across_slots() {
        // One policy reuses its workspace across three slots with moving
        // rates and prices; each slot is compared against a fresh policy in
        // non-incremental mode. Decisions must match bit-for-bit: the
        // workspace only re-routes where the arithmetic happens, never what
        // it computes.
        let sys = presets::section_vii();
        let cold_opts = ResilientOptions {
            solver: SolverConfig::exact().incremental(false),
            ..ResilientOptions::default()
        };
        let mut inc = ResilientPolicy::default();
        let rec = Recorder::noop();
        for (i, slot) in [13usize, 14, 15].into_iter().enumerate() {
            let scale = 1.0 - 0.2 * i as f64;
            let rates = vec![vec![30_000.0 * scale, 25_000.0 * scale]];
            let ctx = SlotContext::new(&sys, &rates, slot, &rec);
            let d_inc = inc.decide(&ctx).unwrap();
            let h = ctx.take_health().unwrap();
            let mut cold = ResilientPolicy::new(cold_opts.clone());
            let d_cold = cold.decide(&ctx).unwrap();
            assert_eq!(d_inc, d_cold, "slot {slot}: dispatch diverged");
            assert_eq!(h.tier_used, Some(Tier::Exact));
            assert!(
                h.solver.warm_attempts > 0,
                "slot {slot}: never warm-started"
            );
        }
    }

    #[test]
    fn incremental_and_cold_ladders_agree_under_chaos() {
        // The same injected-fault stream must walk both ladders through the
        // same tiers with bit-identical per-slot outcomes, so the warm
        // machinery cannot leak into results even while tiers are failing.
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 8);
        let schedule = SolverFaultSchedule::new(0.5, 11);
        let mut inc = ResilientPolicy::default().with_chaos(schedule.clone());
        let mut cold = ResilientPolicy::new(ResilientOptions {
            solver: SolverConfig::exact().incremental(false),
            ..ResilientOptions::default()
        })
        .with_chaos(schedule);
        let a = run_with(&mut inc, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        let b = run_with(&mut cold, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        assert_eq!(a.slots.len(), b.slots.len());
        let mut saw_fallback = false;
        for (x, y) in a.slots.iter().zip(&b.slots) {
            assert_eq!(
                x.net_profit.to_bits(),
                y.net_profit.to_bits(),
                "slot {}: profit {} vs {}",
                x.slot,
                x.net_profit,
                y.net_profit
            );
            assert_eq!(x.dispatched.to_bits(), y.dispatched.to_bits());
            let (hx, hy) = (x.health.as_ref().unwrap(), y.health.as_ref().unwrap());
            assert_eq!(hx.tier_used, hy.tier_used, "slot {}: tier diverged", x.slot);
            saw_fallback |= hx.tier_used != Some(Tier::Exact);
        }
        assert!(
            saw_fallback,
            "chaos at p = 0.5 should trip at least one fallback"
        );
    }

    #[test]
    fn stale_replay_degrades_to_balanced_and_reports_age() {
        let sys = presets::section_v();
        let low = presets::section_v_low_arrivals();
        let rec = Recorder::noop();
        let mut policy = ResilientPolicy::new(ResilientOptions {
            max_replay_age_slots: Some(2),
            ..ResilientOptions::default()
        });
        // Slot 0 decides normally, seeding last_good.
        let ctx0 = SlotContext::new(&sys, &low, 0, &rec);
        policy.decide(&ctx0).unwrap();
        assert!(ctx0.take_health().unwrap().replay_age_slots.is_none());
        // Total chaos from here on: every solver tier and balanced are
        // vetoed, so the replay rung decides.
        policy.chaos = Some(SolverFaultSchedule::new(1.0, 3));
        // Age 2 is within bound: genuine replay.
        let ctx2 = SlotContext::new(&sys, &low, 2, &rec);
        let d2 = policy.decide(&ctx2).unwrap();
        let h2 = ctx2.take_health().unwrap();
        assert_eq!(h2.tier_used, Some(Tier::Replay));
        assert_eq!(h2.replay_age_slots, Some(2));
        assert!(d2.total_dispatched() > 0.0);
        // Age 3 exceeds the bound: the rung degrades to Balanced (which the
        // chaos coin cannot veto — the last rung is infallible).
        let ctx3 = SlotContext::new(&sys, &low, 3, &rec);
        let d3 = policy.decide(&ctx3).unwrap();
        let h3 = ctx3.take_health().unwrap();
        assert_eq!(h3.tier_used, Some(Tier::Balanced));
        assert_eq!(h3.replay_age_slots, Some(3));
        assert_eq!(d3, balanced_dispatch(&sys, &low, 3));
        // The default policy never expires a replay.
        let mut forever = ResilientPolicy::default();
        let c0 = SlotContext::new(&sys, &low, 0, &rec);
        forever.decide(&c0).unwrap();
        forever.chaos = Some(SolverFaultSchedule::new(1.0, 3));
        let c9 = SlotContext::new(&sys, &low, 999, &rec);
        forever.decide(&c9).unwrap();
        let h9 = c9.take_health().unwrap();
        assert_eq!(h9.tier_used, Some(Tier::Replay));
        assert_eq!(h9.replay_age_slots, Some(999));
    }

    #[test]
    fn damping_solves_against_the_smoothed_price_feed_under_volatility() {
        use palb_cluster::PriceSchedule;
        use std::sync::Arc;
        // Slot 1 spikes every DC to 0.90 $/kWh: volatility 3.5 >> 0.3. At
        // spot prices the heavy classes are unprofitable everywhere (6 kWh
        // × 0.90 > their 2-3 $ TUF) and get shed; at the EMA midpoint
        // (~0.55) they stay worth serving — the plans genuinely diverge.
        let slot1 = [0.90, 0.90, 0.90];
        let mut sys = presets::section_v();
        for (l, dc) in sys.data_centers.iter_mut().enumerate() {
            let base = dc.prices.price_at(0);
            dc.prices = PriceSchedule::new_unchecked(vec![base, slot1[l]]);
        }
        // The same system quoting the EMA midpoint at slot 1 — what the
        // damped ladder is expected to optimize against.
        let mut mid_sys = sys.clone();
        for dc in &mut mid_sys.data_centers {
            let mid = 0.5 * dc.prices.price_at(0) + 0.5 * dc.prices.price_at(1);
            dc.prices = PriceSchedule::flat(mid, 2);
        }
        let low = presets::section_v_low_arrivals();
        let registry = Arc::new(crate::obs::Registry::new());
        let rec = Recorder::attached(Arc::clone(&registry));

        let mut damped = ResilientPolicy::default().with_damping(DampingOptions::default());
        assert_eq!(damped.name(), "Resilient+damping");
        let mut plain = ResilientPolicy::default();
        assert_eq!(plain.name(), "Resilient");

        let ctx0 = SlotContext::new(&sys, &low, 0, &rec);
        let d0 = damped.decide(&ctx0).unwrap();
        let p0 = plain.decide(&ctx0).unwrap();
        // Slot 0 is volatility-free: the variants agree.
        assert_eq!(d0, p0);

        let ctx1 = SlotContext::new(&sys, &low, 1, &rec);
        let d1 = damped.decide(&ctx1).unwrap();
        let p1 = plain.decide(&ctx1).unwrap();
        let mut mid_policy = ResilientPolicy::default();
        let mctx = SlotContext::new(&mid_sys, &low, 1, &rec);
        let m1 = mid_policy.decide(&mctx).unwrap();
        assert_eq!(d1, m1, "damped ladder solves the smoothed-price system");
        assert_ne!(d1, p1, "smoothing must actually change the plan");
        // Prices never enter the constraints: the smoothed-price plan is
        // exactly feasible for the true system. Here it also keeps serving
        // the classes the spot-chasing plan shed at the price spike.
        crate::model::check_feasible(&sys, &low, &d1, false, 1e-6).unwrap();
        assert!(d1.total_dispatched() > p1.total_dispatched());
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value(crate::obs::names::DAMPING_EVENTS_TOTAL, &[]),
            Some(1)
        );
    }

    #[test]
    fn damping_stays_inert_on_calm_prices() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 3);
        let damped = run_with(
            &mut ResilientPolicy::default().with_damping(DampingOptions::default()),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        let plain = run_with(
            &mut ResilientPolicy::default(),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        for (a, b) in damped.decisions.iter().zip(&plain.decisions) {
            assert_eq!(a, b, "flat prices must not trigger damping");
        }
    }

    #[test]
    fn chaos_attempt_counter_advances_on_repeated_slots_and_nests() {
        let sys = presets::section_v();
        let low = presets::section_v_low_arrivals();
        let rec = Recorder::noop();
        // p = 0: never fails, but the attempt bookkeeping still advances.
        let mut nested = ChaosPolicy::new(
            ChaosPolicy::new(BalancedPolicy, SolverFaultSchedule::new(0.0, 1)),
            SolverFaultSchedule::new(0.0, 2),
        );
        assert_eq!(nested.name(), "Chaos(Chaos(Balanced))");
        let ctx = SlotContext::new(&sys, &low, 5, &rec);
        nested.decide(&ctx).unwrap();
        assert_eq!(nested.last_attempt(), Some((5, 0)));
        assert_eq!(nested.inner().last_attempt(), Some((5, 0)));
        // A retry on the same slot draws the next attempt in both layers.
        nested.decide(&ctx).unwrap();
        assert_eq!(nested.last_attempt(), Some((5, 1)));
        assert_eq!(nested.inner().last_attempt(), Some((5, 1)));
        // Moving to a new slot resets the counter.
        let ctx6 = SlotContext::new(&sys, &low, 6, &rec);
        nested.decide(&ctx6).unwrap();
        assert_eq!(nested.last_attempt(), Some((6, 0)));
        assert_eq!(nested.inner().last_attempt(), Some((6, 0)));

        // When the outer layer fails, the inner layer never runs, so its
        // attempt counter lags — each layer counts its *own* invocations.
        let mut outer_fails = ChaosPolicy::new(
            ChaosPolicy::new(BalancedPolicy, SolverFaultSchedule::new(0.0, 1)),
            SolverFaultSchedule::new(1.0, 2),
        );
        let ctx7 = SlotContext::new(&sys, &low, 7, &rec);
        assert!(outer_fails.decide(&ctx7).is_err());
        assert!(outer_fails.decide(&ctx7).is_err());
        assert_eq!(outer_fails.last_attempt(), Some((7, 1)));
        assert_eq!(outer_fails.inner().last_attempt(), None);

        // Retries on the same slot draw fresh coins: with p = 0.5 some
        // attempt sequence must mix successes and failures on one slot.
        let sched = SolverFaultSchedule::new(0.5, 42);
        let mut flaky = ChaosPolicy::new(BalancedPolicy, sched.clone());
        let ctx8 = SlotContext::new(&sys, &low, 8, &rec);
        let outcomes: Vec<bool> = (0..6).map(|_| flaky.decide(&ctx8).is_ok()).collect();
        let expected: Vec<bool> = (0..6).map(|a| !sched.fails(8, a)).collect();
        assert_eq!(outcomes, expected);
    }

    #[test]
    fn multilevel_systems_walk_the_ladder_too() {
        let sys = presets::section_vii();
        let trace = constant_trace(vec![vec![30_000.0, 25_000.0]], 1);
        let mut policy = ResilientPolicy::default();
        let r = run_with(&mut policy, &sys, &trace, &RunOptions::at(13))
            .unwrap()
            .result;
        let h = r.slots[0].health.as_ref().unwrap();
        assert_eq!(h.tier_used, Some(Tier::Exact));
        assert!(r.total_net_profit() > 0.0);
    }
}
