//! Exterior penalty and augmented-Lagrangian wrappers that reduce a
//! constrained NLP to a sequence of box-constrained minimizations.

use crate::func::{BoxBounds, ScalarFn};
use crate::gradient::{minimize_box, GradientOptions, GradientResult};

/// A constrained nonlinear program:
/// minimize `objective` subject to `inequalities[i](x) ≤ 0`,
/// `equalities[j](x) = 0`, and `bounds`.
pub struct ConstrainedNlp<'a> {
    /// Objective to minimize.
    pub objective: ScalarFn<'a>,
    /// Inequality residuals, feasible when ≤ 0.
    pub inequalities: Vec<ScalarFn<'a>>,
    /// Equality residuals, feasible when = 0.
    pub equalities: Vec<ScalarFn<'a>>,
    /// Box bounds on the variables.
    pub bounds: BoxBounds,
}

/// Options for the outer penalty / augmented-Lagrangian loop.
#[derive(Debug, Clone)]
pub struct PenaltyOptions {
    /// Initial penalty weight μ.
    pub mu0: f64,
    /// Multiplicative growth of μ per outer iteration.
    pub mu_growth: f64,
    /// Maximum outer iterations.
    pub max_outer: usize,
    /// Constraint-violation tolerance declaring feasibility.
    pub feas_tol: f64,
    /// Inner solver options.
    pub inner: GradientOptions,
}

impl Default for PenaltyOptions {
    fn default() -> Self {
        PenaltyOptions {
            mu0: 10.0,
            mu_growth: 10.0,
            max_outer: 12,
            feas_tol: 1e-6,
            inner: GradientOptions::default(),
        }
    }
}

/// Result of a constrained solve.
#[derive(Debug, Clone)]
pub struct ConstrainedResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective at `x` (the true objective, not the merit function).
    pub objective: f64,
    /// Worst constraint violation at `x` (0 when feasible).
    pub max_violation: f64,
    /// Total inner iterations across all outer rounds.
    pub inner_iterations: usize,
    /// Whether `max_violation ≤ feas_tol` was reached.
    pub feasible: bool,
}

fn max_violation(nlp: &ConstrainedNlp<'_>, x: &[f64]) -> f64 {
    let gi = nlp
        .inequalities
        .iter()
        .map(|g| g(x).max(0.0))
        .fold(0.0_f64, f64::max);
    let hi = nlp
        .equalities
        .iter()
        .map(|h| h(x).abs())
        .fold(0.0_f64, f64::max);
    gi.max(hi)
}

/// Classic exterior quadratic penalty: minimize
/// `f(x) + μ·(Σ max(0, g)² + Σ h²)` for growing μ.
pub fn solve_penalty(
    nlp: &ConstrainedNlp<'_>,
    x0: &[f64],
    opts: &PenaltyOptions,
) -> ConstrainedResult {
    let mut x = x0.to_vec();
    nlp.bounds.project(&mut x);
    let mut mu = opts.mu0;
    let mut inner_total = 0;

    for _ in 0..opts.max_outer {
        let merit = |p: &[f64]| {
            let mut v = (nlp.objective)(p);
            for g in &nlp.inequalities {
                let gv = g(p).max(0.0);
                v += mu * gv * gv;
            }
            for h in &nlp.equalities {
                let hv = h(p);
                v += mu * hv * hv;
            }
            v
        };
        let GradientResult {
            x: xi, iterations, ..
        } = minimize_box(&merit, &nlp.bounds, &x, &opts.inner);
        x = xi;
        inner_total += iterations;
        if max_violation(nlp, &x) <= opts.feas_tol {
            break;
        }
        mu *= opts.mu_growth;
    }

    let violation = max_violation(nlp, &x);
    ConstrainedResult {
        objective: (nlp.objective)(&x),
        max_violation: violation,
        inner_iterations: inner_total,
        feasible: violation <= opts.feas_tol,
        x,
    }
}

/// Augmented Lagrangian (method of multipliers) with the standard
/// `max(0, λ + μ g)` treatment of inequalities. Usually reaches feasibility
/// at much smaller μ than the pure penalty, improving conditioning.
pub fn solve_augmented_lagrangian(
    nlp: &ConstrainedNlp<'_>,
    x0: &[f64],
    opts: &PenaltyOptions,
) -> ConstrainedResult {
    let mut x = x0.to_vec();
    nlp.bounds.project(&mut x);
    let mut mu = opts.mu0;
    let mut lam_g = vec![0.0_f64; nlp.inequalities.len()];
    let mut lam_h = vec![0.0_f64; nlp.equalities.len()];
    let mut inner_total = 0;

    for _ in 0..opts.max_outer {
        let merit = |p: &[f64]| {
            let mut v = (nlp.objective)(p);
            for (g, &l) in nlp.inequalities.iter().zip(&lam_g) {
                let t = (l + mu * g(p)).max(0.0);
                v += (t * t - l * l) / (2.0 * mu);
            }
            for (h, &l) in nlp.equalities.iter().zip(&lam_h) {
                let hv = h(p);
                v += l * hv + 0.5 * mu * hv * hv;
            }
            v
        };
        let GradientResult {
            x: xi, iterations, ..
        } = minimize_box(&merit, &nlp.bounds, &x, &opts.inner);
        x = xi;
        inner_total += iterations;

        // Multiplier updates.
        for (g, l) in nlp.inequalities.iter().zip(&mut lam_g) {
            *l = (*l + mu * g(&x)).max(0.0);
        }
        for (h, l) in nlp.equalities.iter().zip(&mut lam_h) {
            *l += mu * h(&x);
        }
        if max_violation(nlp, &x) <= opts.feas_tol {
            break;
        }
        mu *= opts.mu_growth.sqrt().max(2.0);
    }

    let violation = max_violation(nlp, &x);
    ConstrainedResult {
        objective: (nlp.objective)(&x),
        max_violation: violation,
        inner_iterations: inner_total,
        feasible: violation <= opts.feas_tol,
        x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_nlp<'a>() -> ConstrainedNlp<'a> {
        // min x² + y²  s.t.  x + y ≥ 1  → (0.5, 0.5), f = 0.5
        ConstrainedNlp {
            objective: Box::new(|x: &[f64]| x[0] * x[0] + x[1] * x[1]),
            inequalities: vec![Box::new(|x: &[f64]| 1.0 - x[0] - x[1])],
            equalities: vec![],
            bounds: BoxBounds::free(2),
        }
    }

    #[test]
    fn penalty_finds_projection_onto_halfspace() {
        let r = solve_penalty(&simple_nlp(), &[0.0, 0.0], &PenaltyOptions::default());
        assert!(r.feasible, "violation {}", r.max_violation);
        assert!((r.x[0] - 0.5).abs() < 1e-2, "{:?}", r.x);
        assert!((r.x[1] - 0.5).abs() < 1e-2);
        assert!((r.objective - 0.5).abs() < 2e-2);
    }

    #[test]
    fn augmented_lagrangian_matches_penalty() {
        let rp = solve_penalty(&simple_nlp(), &[0.0, 0.0], &PenaltyOptions::default());
        let ra = solve_augmented_lagrangian(&simple_nlp(), &[0.0, 0.0], &PenaltyOptions::default());
        assert!(ra.feasible);
        assert!((ra.objective - rp.objective).abs() < 2e-2);
        // AL should be at least as accurate on the active constraint.
        assert!(ra.max_violation <= 1e-5);
    }

    #[test]
    fn equality_constraint_circle() {
        // min x + y  s.t.  x² + y² = 1  → (-√½, -√½), f = -√2
        let nlp = ConstrainedNlp {
            objective: Box::new(|x: &[f64]| x[0] + x[1]),
            inequalities: vec![],
            equalities: vec![Box::new(|x: &[f64]| x[0] * x[0] + x[1] * x[1] - 1.0)],
            bounds: BoxBounds::new(vec![-2.0, -2.0], vec![2.0, 2.0]),
        };
        let r = solve_augmented_lagrangian(&nlp, &[-0.5, -0.6], &PenaltyOptions::default());
        assert!(r.feasible, "violation {}", r.max_violation);
        assert!(
            (r.objective + std::f64::consts::SQRT_2).abs() < 1e-2,
            "f = {}",
            r.objective
        );
    }

    #[test]
    fn inactive_constraints_do_not_perturb() {
        // min (x-1)² with a constraint x ≤ 100 that never binds.
        let nlp = ConstrainedNlp {
            objective: Box::new(|x: &[f64]| (x[0] - 1.0).powi(2)),
            inequalities: vec![Box::new(|x: &[f64]| x[0] - 100.0)],
            equalities: vec![],
            bounds: BoxBounds::free(1),
        };
        let r = solve_penalty(&nlp, &[0.0], &PenaltyOptions::default());
        assert!((r.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn respects_box_even_when_constraints_pull_outside() {
        // min (x-5)² s.t. x ≤ 10, box [0, 2]: box wins, x = 2.
        let nlp = ConstrainedNlp {
            objective: Box::new(|x: &[f64]| (x[0] - 5.0).powi(2)),
            inequalities: vec![Box::new(|x: &[f64]| x[0] - 10.0)],
            equalities: vec![],
            bounds: BoxBounds::new(vec![0.0], vec![2.0]),
        };
        let r = solve_penalty(&nlp, &[1.0], &PenaltyOptions::default());
        assert!((r.x[0] - 2.0).abs() < 1e-6);
        assert!(r.feasible);
    }

    #[test]
    fn reports_infeasible_when_constraints_conflict() {
        // x ≤ -1 and x ≥ 1 cannot both hold.
        let nlp = ConstrainedNlp {
            objective: Box::new(|x: &[f64]| x[0] * x[0]),
            inequalities: vec![
                Box::new(|x: &[f64]| x[0] + 1.0), // x <= -1
                Box::new(|x: &[f64]| 1.0 - x[0]), // x >= 1
            ],
            equalities: vec![],
            bounds: BoxBounds::free(1),
        };
        let r = solve_penalty(&nlp, &[0.0], &PenaltyOptions::default());
        assert!(!r.feasible);
        assert!(r.max_violation > 0.5);
    }
}
