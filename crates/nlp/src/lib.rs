// palb:lint-tier = lib
//! # palb-nlp — nonlinear programming substrate
//!
//! The paper solves its multi-level-TUF formulation with commercial
//! nonlinear / constraint-logic solvers (ILOG CPLEX, AIMMS). This crate is
//! the from-scratch replacement used by `palb-core`'s paper-literal big-M
//! path: projected gradient descent over box constraints, wrapped by an
//! exterior penalty method and an augmented Lagrangian for general
//! inequality/equality constraints.
//!
//! The exact branch-and-bound solver in `palb-core` remains the primary
//! optimizer; this crate exists to reproduce (and cross-check) the
//! continuous reformulation the paper actually shipped to its solvers.
//!
//! ```
//! use palb_nlp::{BoxBounds, ConstrainedNlp, PenaltyOptions, solve_augmented_lagrangian};
//!
//! // min x² + y²  subject to  x + y ≥ 1.
//! let nlp = ConstrainedNlp {
//!     objective: Box::new(|x: &[f64]| x[0] * x[0] + x[1] * x[1]),
//!     inequalities: vec![Box::new(|x: &[f64]| 1.0 - x[0] - x[1])],
//!     equalities: vec![],
//!     bounds: BoxBounds::free(2),
//! };
//! let r = solve_augmented_lagrangian(&nlp, &[0.0, 0.0], &PenaltyOptions::default());
//! assert!(r.feasible);
//! assert!((r.x[0] - 0.5).abs() < 1e-2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod func;
mod gradient;
mod penalty;

pub use func::{numeric_gradient, BoxBounds, ScalarFn};
pub use gradient::{minimize_box, GradientOptions, GradientResult};
pub use penalty::{
    solve_augmented_lagrangian, solve_penalty, ConstrainedNlp, ConstrainedResult, PenaltyOptions,
};
