//! Function-evaluation utilities: boxed callables, numeric differentiation,
//! and box bounds shared by every solver in this crate.

/// A scalar function of a point, used for objectives and constraint
/// residuals alike.
pub type ScalarFn<'a> = Box<dyn Fn(&[f64]) -> f64 + Sync + 'a>;

/// Componentwise box bounds `lo ≤ x ≤ hi`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxBounds {
    /// Lower bounds (may be `-inf`).
    pub lo: Vec<f64>,
    /// Upper bounds (may be `+inf`).
    pub hi: Vec<f64>,
}

impl BoxBounds {
    /// Builds bounds, validating shape and ordering.
    ///
    /// # Panics
    /// Panics if lengths differ or any `lo[i] > hi[i]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound vectors must match in length");
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(l <= h, "bound {i}: lo {l} > hi {h}");
        }
        BoxBounds { lo, hi }
    }

    /// Unbounded box of dimension `n`.
    pub fn free(n: usize) -> Self {
        BoxBounds {
            lo: vec![f64::NEG_INFINITY; n],
            hi: vec![f64::INFINITY; n],
        }
    }

    /// Non-negative orthant of dimension `n`.
    pub fn nonneg(n: usize) -> Self {
        BoxBounds {
            lo: vec![0.0; n],
            hi: vec![f64::INFINITY; n],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Projects `x` onto the box in place.
    pub fn project(&self, x: &mut [f64]) {
        for ((xi, &l), &h) in x.iter_mut().zip(&self.lo).zip(&self.hi) {
            *xi = xi.clamp(l, h);
        }
    }

    /// Whether `x` lies inside the box within `tol`.
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        x.iter()
            .zip(&self.lo)
            .zip(&self.hi)
            .all(|((&xi, &l), &h)| xi >= l - tol && xi <= h + tol)
    }
}

/// Central-difference numeric gradient of `f` at `x`.
///
/// Step size scales with the coordinate magnitude to stay accurate across
/// wildly different variable scales (CPU shares in `[0,1]` vs request rates
/// in the thousands).
pub fn numeric_gradient(f: &dyn Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let h = 1e-6 * (1.0 + x[i].abs());
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = f(&xp);
        xp[i] = orig - h;
        let fm = f(&xp);
        xp[i] = orig;
        g[i] = (fp - fm) / (2.0 * h);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_clamps_each_coordinate() {
        let b = BoxBounds::new(vec![0.0, -1.0], vec![1.0, 1.0]);
        let mut x = vec![2.0, -3.0];
        b.project(&mut x);
        assert_eq!(x, vec![1.0, -1.0]);
    }

    #[test]
    fn contains_respects_tolerance() {
        let b = BoxBounds::nonneg(1);
        assert!(b.contains(&[0.0], 0.0));
        assert!(b.contains(&[-1e-12], 1e-9));
        assert!(!b.contains(&[-1.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn rejects_inverted_bounds() {
        BoxBounds::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn numeric_gradient_of_quadratic() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
        let g = numeric_gradient(&f, &[2.0, 5.0]);
        assert!((g[0] - 4.0).abs() < 1e-5);
        assert!((g[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn numeric_gradient_scales_with_magnitude() {
        // Large coordinates should not destroy accuracy.
        let f = |x: &[f64]| 0.5 * x[0] * x[0];
        let g = numeric_gradient(&f, &[1.0e6]);
        assert!((g[0] - 1.0e6).abs() < 1.0, "g = {}", g[0]);
    }
}
