//! Projected gradient descent with Armijo backtracking over box constraints.
//!
//! This is the inner solver of the penalty / augmented-Lagrangian loops. It
//! is deliberately simple — dense numeric gradients and monotone descent —
//! because the big-M dispatch problems it targets have at most a few hundred
//! variables and smooth-between-kinks merit functions.

use palb_num::is_zero;

use crate::func::{numeric_gradient, BoxBounds};

/// Options for [`minimize_box`].
#[derive(Debug, Clone)]
pub struct GradientOptions {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Initial step size tried at each iteration.
    pub initial_step: f64,
    /// Armijo sufficient-decrease coefficient.
    pub armijo_c: f64,
    /// Backtracking shrink factor.
    pub backtrack: f64,
    /// Stop when the projected-gradient step moves less than this (relative).
    pub x_tol: f64,
    /// Stop when the objective improves less than this (relative).
    pub f_tol: f64,
}

impl Default for GradientOptions {
    fn default() -> Self {
        GradientOptions {
            max_iters: 2_000,
            initial_step: 1.0,
            armijo_c: 1e-4,
            backtrack: 0.5,
            x_tol: 1e-10,
            f_tol: 1e-12,
        }
    }
}

/// Result of a box-constrained minimization.
#[derive(Debug, Clone)]
pub struct GradientResult {
    /// Best point found (inside the box).
    pub x: Vec<f64>,
    /// Objective at `x`.
    pub f: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether a stopping tolerance (rather than the iteration cap) fired.
    pub converged: bool,
}

/// Minimizes `f` over the box by projected gradient descent starting at
/// `x0` (projected into the box first).
pub fn minimize_box(
    f: &dyn Fn(&[f64]) -> f64,
    bounds: &BoxBounds,
    x0: &[f64],
    opts: &GradientOptions,
) -> GradientResult {
    assert_eq!(x0.len(), bounds.dim(), "x0 dimension mismatch");
    let mut x = x0.to_vec();
    bounds.project(&mut x);
    let mut fx = f(&x);
    let mut step_seed = opts.initial_step;

    for it in 0..opts.max_iters {
        let g = numeric_gradient(f, &x);
        let gnorm = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        if gnorm < 1e-14 {
            return GradientResult {
                x,
                f: fx,
                iterations: it,
                converged: true,
            };
        }

        // Backtracking line search along the projected path.
        let mut alpha = step_seed;
        let mut accepted = false;
        for _ in 0..60 {
            let mut cand: Vec<f64> = x.iter().zip(&g).map(|(&xi, &gi)| xi - alpha * gi).collect();
            bounds.project(&mut cand);
            let fc = f(&cand);
            // Projected Armijo: compare against the actual movement.
            let movement: f64 = cand
                .iter()
                .zip(&x)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            if is_zero(movement) {
                break; // pinned at a box corner along -g
            }
            if fc <= fx - opts.armijo_c * movement * gnorm {
                let df = fx - fc;
                let dx = movement;
                x = cand;
                fx = fc;
                accepted = true;
                // Mild step-size adaptation for the next iteration.
                step_seed = (alpha * 2.0).min(opts.initial_step * 16.0);
                if dx < opts.x_tol * (1.0 + x.iter().map(|v| v.abs()).fold(0.0, f64::max))
                    || df < opts.f_tol * (1.0 + fx.abs())
                {
                    return GradientResult {
                        x,
                        f: fx,
                        iterations: it + 1,
                        converged: true,
                    };
                }
                break;
            }
            alpha *= opts.backtrack;
        }
        if !accepted {
            // No descent direction within the line-search budget: either at
            // a stationary point of the projection or the gradient is noise.
            return GradientResult {
                x,
                f: fx,
                iterations: it,
                converged: true,
            };
        }
    }
    GradientResult {
        x,
        f: fx,
        iterations: opts.max_iters,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_quadratic() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let b = BoxBounds::free(2);
        let r = minimize_box(&f, &b, &[0.0, 0.0], &GradientOptions::default());
        assert!((r.x[0] - 3.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 1e-4);
        assert!(r.f < 1e-7);
    }

    #[test]
    fn active_box_constraint() {
        // min (x-3)^2 over [0, 2] -> x = 2.
        let f = |x: &[f64]| (x[0] - 3.0).powi(2);
        let b = BoxBounds::new(vec![0.0], vec![2.0]);
        let r = minimize_box(&f, &b, &[0.5], &GradientOptions::default());
        assert!((r.x[0] - 2.0).abs() < 1e-6, "{:?}", r.x);
    }

    #[test]
    fn rosenbrock_in_a_box() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let b = BoxBounds::new(vec![-2.0, -2.0], vec![2.0, 2.0]);
        let opts = GradientOptions {
            max_iters: 60_000,
            ..GradientOptions::default()
        };
        let r = minimize_box(&f, &b, &[-1.2, 1.0], &opts);
        // Plain PGD converges slowly on Rosenbrock; accept a loose ball.
        assert!(r.f < 1e-3, "f = {}, x = {:?}", r.f, r.x);
    }

    #[test]
    fn starts_outside_box_get_projected() {
        let f = |x: &[f64]| x[0] * x[0];
        let b = BoxBounds::new(vec![1.0], vec![5.0]);
        let r = minimize_box(&f, &b, &[100.0], &GradientOptions::default());
        assert!((r.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_gradient_converges_immediately() {
        let f = |_: &[f64]| 7.0;
        let b = BoxBounds::free(3);
        let r = minimize_box(&f, &b, &[1.0, 2.0, 3.0], &GradientOptions::default());
        assert!(r.converged);
        assert_eq!(r.f, 7.0);
    }
}
