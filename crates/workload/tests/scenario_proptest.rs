//! Property tests of the scenario engine's determinism contract on
//! randomized traces, feeds, and seeds: applying a scenario is a pure
//! function of `(scenario, seed)`, so every surface — rates, prices,
//! system effects, solver-failure probabilities — reproduces bit for bit
//! under the same seed, keeps its shape, and re-salts its hash streams
//! when a perturbation moves to a different stack position. This is the
//! contract the bench scorecard's committed baseline (and its thread-count
//! invariance) rests on.

use palb_workload::fault::RateFaultConfig;
use palb_workload::scenario::{self, RateFaults, Scenario, SlowDrift};
use palb_workload::Trace;
use proptest::prelude::*;

/// A small random rate grid: 1-26 slots, 1-4 front-ends, 1-3 classes.
fn trace() -> impl Strategy<Value = Trace> {
    (1usize..=26, 1usize..=4, 1usize..=3)
        .prop_flat_map(|(t, s, k)| {
            proptest::collection::vec(
                proptest::collection::vec(proptest::collection::vec(0.0f64..1e5, k..=k), s..=s),
                t..=t,
            )
        })
        .prop_map(Trace::new)
}

/// Bit-exact fingerprint of a trace (NaN-safe, unlike `==` on rates).
fn bits(t: &Trace) -> Vec<u64> {
    let mut out = Vec::new();
    for slot in 0..t.slots() {
        for fe in 0..t.front_ends() {
            for class in 0..t.classes() {
                out.push(t.rate(slot, fe, class).to_bits());
            }
        }
    }
    out
}

proptest! {
    /// Same seed, same world: every surface of every built-in scenario is
    /// bitwise reproducible on arbitrary inputs.
    #[test]
    fn every_builtin_surface_is_a_pure_function_of_the_seed(
        tr in trace(),
        feed in proptest::collection::vec(0.01f64..0.2, 1..=26),
        seed in any::<u64>(),
    ) {
        for sc in scenario::builtin() {
            let a = sc.perturb_trace(&tr, seed);
            let b = sc.perturb_trace(&tr, seed);
            prop_assert_eq!(bits(&a), bits(&b), "{} rates", sc.name());

            for dc in 0..3 {
                let mut fa = feed.clone();
                let mut fb = feed.clone();
                sc.perturb_price_feed(dc, 3, &mut fa, seed);
                sc.perturb_price_feed(dc, 3, &mut fb, seed);
                let fa: Vec<u64> = fa.iter().map(|p| p.to_bits()).collect();
                let fb: Vec<u64> = fb.iter().map(|p| p.to_bits()).collect();
                prop_assert_eq!(fa, fb, "{} prices dc {}", sc.name(), dc);
            }

            prop_assert_eq!(
                sc.system_effects(tr.slots(), 3),
                sc.system_effects(tr.slots(), 3),
                "{} effects", sc.name()
            );
            let pa = sc.solver_fault_probs(tr.slots());
            let pb = sc.solver_fault_probs(tr.slots());
            prop_assert_eq!(pa, pb, "{} solver probs", sc.name());
        }
    }

    /// Perturbed traces keep the planning grid's shape — scenarios corrupt
    /// values, never dimensions.
    #[test]
    fn perturbed_traces_keep_their_shape(tr in trace(), seed in any::<u64>()) {
        for sc in scenario::builtin() {
            let p = sc.perturb_trace(&tr, seed);
            prop_assert_eq!(
                (p.slots(), p.front_ends(), p.classes()),
                (tr.slots(), tr.front_ends(), tr.classes()),
                "{}", sc.name()
            );
        }
    }

    /// Stack position salts the hash streams: the same fault perturbation
    /// draws a different pattern when a no-op stage is pushed ahead of it,
    /// so nesting scenarios can never silently reuse a stream.
    #[test]
    fn stack_position_resalts_fault_streams(seed in any::<u64>()) {
        let cfg = RateFaultConfig {
            seed: 0,
            nan_burst_prob: 0.5,
            negative_prob: 0.2,
            spike_prob: 0.2,
            spike_factor: 1e6,
        };
        let at_head = Scenario::new("head", "fault stage first")
            .push(Box::new(RateFaults(cfg.clone())));
        let behind_noop = Scenario::new("shifted", "no-op stage first")
            .push(Box::new(SlowDrift { per_slot: 0.0 }))
            .push(Box::new(RateFaults(cfg)));
        let tr = Trace::new(vec![vec![vec![1000.0; 3]; 4]; 24]);
        prop_assert_ne!(
            bits(&at_head.perturb_trace(&tr, seed)),
            bits(&behind_noop.perturb_trace(&tr, seed))
        );
    }
}
