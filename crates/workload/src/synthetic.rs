//! Constant-rate synthetic workloads — the §V "basic characteristics"
//! study's Table II arrival sets, repeated for any number of slots.

use crate::trace::Trace;

/// Builds a trace that repeats one `rates[front_end][class]` matrix for
/// `slots` slots (the §V studies evaluate a single representative slot;
/// multiple slots let the driver average over price periods).
pub fn constant_trace(rates: Vec<Vec<f64>>, slots: usize) -> Trace {
    assert!(slots > 0, "need at least one slot");
    Trace::new(vec![rates; slots])
}

/// A uniform matrix: every front-end offers `rate` of every class.
pub fn uniform_rates(front_ends: usize, classes: usize, rate: f64) -> Vec<Vec<f64>> {
    vec![vec![rate; classes]; front_ends]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_repeats_matrix() {
        let tr = constant_trace(vec![vec![1.0, 2.0]], 3);
        assert_eq!(tr.slots(), 3);
        for t in 0..3 {
            assert_eq!(tr.rate(t, 0, 1), 2.0);
        }
    }

    #[test]
    fn uniform_rates_shape() {
        let m = uniform_rates(2, 3, 5.0);
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|row| row == &vec![5.0, 5.0, 5.0]));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        constant_trace(vec![vec![1.0]], 0);
    }
}
