//! Arrival-rate forecasting.
//!
//! The paper runs its controller on the *observed* average arrival rates
//! and notes that "existing prediction methods (e.g. the Kalman Filter)
//! … can be employed if necessary" (§III). This module supplies those
//! methods so the bench harness can quantify what imperfect foresight
//! costs: naive and seasonal-naive baselines, exponentially weighted
//! moving averages, and a scalar local-level Kalman filter — one
//! independent filter per (front-end, class) stream.

use crate::trace::Trace;

/// A one-step-ahead forecaster for a single rate stream.
pub trait Forecaster {
    /// Predicts the next value from the history so far; called before
    /// [`Forecaster::observe`] of that value.
    fn predict(&self) -> f64;
    /// Feeds the realized value.
    fn observe(&mut self, value: f64);
    /// Fresh copy with the same parameters and no history.
    fn reset(&self) -> Box<dyn Forecaster>;
}

/// Predicts the last observed value (random-walk forecast).
#[derive(Debug, Clone)]
pub struct Naive {
    last: f64,
}

impl Naive {
    /// Starts from an initial guess.
    pub fn new(initial: f64) -> Self {
        Naive { last: initial }
    }
}

impl Forecaster for Naive {
    fn predict(&self) -> f64 {
        self.last
    }
    fn observe(&mut self, value: f64) {
        self.last = value;
    }
    fn reset(&self) -> Box<dyn Forecaster> {
        Box::new(Naive { last: self.last })
    }
}

/// Predicts the value observed `period` steps ago (diurnal repetition).
/// Falls back to the last value until a full period is seen.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: usize,
    history: Vec<f64>,
    initial: f64,
}

impl SeasonalNaive {
    /// `period` in slots (24 for daily seasonality on hourly slots).
    pub fn new(period: usize, initial: f64) -> Self {
        assert!(period > 0, "period must be positive");
        SeasonalNaive {
            period,
            history: Vec::new(),
            initial,
        }
    }
}

impl Forecaster for SeasonalNaive {
    fn predict(&self) -> f64 {
        let n = self.history.len();
        if n >= self.period {
            self.history[n - self.period]
        } else if let Some(&last) = self.history.last() {
            last
        } else {
            self.initial
        }
    }
    fn observe(&mut self, value: f64) {
        self.history.push(value);
    }
    fn reset(&self) -> Box<dyn Forecaster> {
        Box::new(SeasonalNaive::new(self.period, self.initial))
    }
}

/// Exponentially weighted moving average: `level ← α·x + (1−α)·level`.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    level: f64,
    seeded: bool,
}

impl Ewma {
    /// `alpha ∈ (0, 1]`; larger reacts faster.
    pub fn new(alpha: f64, initial: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of (0,1]: {alpha}");
        Ewma {
            alpha,
            level: initial,
            seeded: false,
        }
    }
}

impl Forecaster for Ewma {
    fn predict(&self) -> f64 {
        self.level
    }
    fn observe(&mut self, value: f64) {
        if self.seeded {
            self.level += self.alpha * (value - self.level);
        } else {
            self.level = value;
            self.seeded = true;
        }
    }
    fn reset(&self) -> Box<dyn Forecaster> {
        Box::new(Ewma::new(self.alpha, self.level))
    }
}

/// Scalar local-level Kalman filter: hidden level `x_t = x_{t−1} + w`,
/// observation `y_t = x_t + v`, with `w ~ N(0, q)` and `v ~ N(0, r)`.
/// The filter the paper cites (Welch & Bishop) in its simplest useful form.
#[derive(Debug, Clone)]
pub struct ScalarKalman {
    /// Process noise variance `q`.
    q: f64,
    /// Observation noise variance `r`.
    r: f64,
    /// Level estimate.
    x: f64,
    /// Estimate variance.
    p: f64,
    seeded: bool,
}

impl ScalarKalman {
    /// Builds the filter; `q` and `r` must be positive.
    pub fn new(q: f64, r: f64, initial: f64) -> Self {
        assert!(q > 0.0 && r > 0.0, "noise variances must be positive");
        ScalarKalman {
            q,
            r,
            x: initial,
            p: r,
            seeded: false,
        }
    }

    /// Current Kalman gain (diagnostic).
    pub fn gain(&self) -> f64 {
        (self.p + self.q) / (self.p + self.q + self.r)
    }
}

impl Forecaster for ScalarKalman {
    fn predict(&self) -> f64 {
        self.x
    }
    fn observe(&mut self, value: f64) {
        if !self.seeded {
            self.x = value;
            self.seeded = true;
            return;
        }
        // Time update: level persists, variance grows by q.
        let p_pred = self.p + self.q;
        // Measurement update.
        let k = p_pred / (p_pred + self.r);
        self.x += k * (value - self.x);
        self.p = (1.0 - k) * p_pred;
    }
    fn reset(&self) -> Box<dyn Forecaster> {
        Box::new(ScalarKalman::new(self.q, self.r, self.x))
    }
}

/// Runs one forecaster prototype per (front-end, class) stream across a
/// trace, returning the *predicted* trace (slot 0 uses the prototype's
/// initial state). The prototype is `reset()` per stream.
pub fn forecast_trace(trace: &Trace, prototype: &dyn Forecaster) -> Trace {
    let mut filters: Vec<Vec<Box<dyn Forecaster>>> = (0..trace.front_ends())
        .map(|_| (0..trace.classes()).map(|_| prototype.reset()).collect())
        .collect();
    let mut rates = Vec::with_capacity(trace.slots());
    for t in 0..trace.slots() {
        let mut slot = Vec::with_capacity(trace.front_ends());
        for s in 0..trace.front_ends() {
            let mut row = Vec::with_capacity(trace.classes());
            for k in 0..trace.classes() {
                let f = &mut filters[s][k];
                row.push(f.predict().max(0.0));
                f.observe(trace.rate(t, s, k));
            }
            slot.push(row);
        }
        rates.push(slot);
    }
    Trace::new(rates)
}

/// Mean absolute percentage error of `predicted` against `actual`,
/// skipping zero-actual entries.
pub fn mape(actual: &Trace, predicted: &Trace) -> f64 {
    assert_eq!(actual.slots(), predicted.slots());
    let mut total = 0.0;
    let mut n = 0u64;
    for t in 0..actual.slots() {
        for s in 0..actual.front_ends() {
            for k in 0..actual.classes() {
                let a = actual.rate(t, s, k);
                if a > 0.0 {
                    total += (predicted.rate(t, s, k) - a).abs() / a;
                    n += 1;
                }
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diurnal::{generate, DiurnalConfig};

    #[test]
    fn naive_tracks_last_value() {
        let mut f = Naive::new(5.0);
        assert_eq!(f.predict(), 5.0);
        f.observe(7.0);
        assert_eq!(f.predict(), 7.0);
    }

    #[test]
    fn seasonal_naive_repeats_the_period() {
        let mut f = SeasonalNaive::new(3, 0.0);
        for v in [1.0, 2.0, 3.0] {
            f.observe(v);
        }
        assert_eq!(f.predict(), 1.0); // 3 steps ago
        f.observe(4.0);
        assert_eq!(f.predict(), 2.0);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut f = Ewma::new(0.3, 0.0);
        for _ in 0..60 {
            f.observe(10.0);
        }
        assert!((f.predict() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn kalman_locks_onto_level_and_rejects_noise() {
        let mut f = ScalarKalman::new(0.01, 4.0, 0.0);
        // Noisy constant level 100: deterministic +/- dither.
        for i in 0..200 {
            let noise = if i % 2 == 0 { 2.0 } else { -2.0 };
            f.observe(100.0 + noise);
        }
        assert!(
            (f.predict() - 100.0).abs() < 0.5,
            "estimate {}",
            f.predict()
        );
        // Gain settles strictly inside (0, 1).
        let g = f.gain();
        assert!(g > 0.0 && g < 0.5, "gain {g}");
    }

    #[test]
    fn kalman_tracks_level_shift() {
        let mut f = ScalarKalman::new(1.0, 1.0, 0.0);
        for _ in 0..20 {
            f.observe(50.0);
        }
        for _ in 0..20 {
            f.observe(80.0);
        }
        assert!((f.predict() - 80.0).abs() < 2.0);
    }

    #[test]
    fn forecast_trace_shapes_match() {
        let trace = generate(&DiurnalConfig::default());
        let pred = forecast_trace(&trace, &Naive::new(trace.rate(0, 0, 0)));
        assert_eq!(pred.slots(), trace.slots());
        assert_eq!(pred.front_ends(), trace.front_ends());
        // Naive prediction at slot t equals the actual at t-1.
        for t in 1..trace.slots() {
            assert_eq!(pred.rate(t, 2, 1), trace.rate(t - 1, 2, 1));
        }
    }

    #[test]
    fn seasonal_beats_naive_on_two_identical_days() {
        // 48 hours of a noiseless diurnal pattern: day 2 is predictable.
        let day = generate(&DiurnalConfig {
            noise_sigma: 0.0,
            slots: 24,
            ..DiurnalConfig::default()
        });
        let mut two_days = Vec::new();
        for rep in 0..2 {
            for t in 0..24 {
                let _ = rep;
                two_days.push(day.slot(t).clone());
            }
        }
        let trace = Trace::new(two_days);
        let naive = forecast_trace(&trace, &Naive::new(0.0));
        let seasonal = forecast_trace(&trace, &SeasonalNaive::new(24, 0.0));
        // Compare only on day 2, where the seasonal filter has history.
        let day2 = |tr: &Trace| {
            let rates: Vec<Vec<Vec<f64>>> = (24..48).map(|t| tr.slot(t).clone()).collect();
            Trace::new(rates)
        };
        let e_naive = mape(&day2(&trace), &day2(&naive));
        let e_seasonal = mape(&day2(&trace), &day2(&seasonal));
        assert!(
            e_seasonal < 0.2 * e_naive,
            "seasonal {e_seasonal} vs naive {e_naive}"
        );
        assert!(e_seasonal < 1e-9); // exactly repeating pattern
    }

    #[test]
    fn mape_zero_for_perfect_prediction() {
        let trace = generate(&DiurnalConfig::default());
        assert_eq!(mape(&trace, &trace), 0.0);
    }
}
