//! Diurnal (World-Cup-'98-like) trace generation — the §VI workload
//! substitute.
//!
//! The paper replays the 1998 World Cup web-access logs: four different
//! days of the trace stand in for the four front-end servers, and each
//! front-end's trace is time-shifted to synthesize the three request
//! classes ("we simply shifted the request traces at a front-end server by
//! some time units to simulate the requests of three different service
//! types"). We do not have the logs, but the optimizer consumes only
//! per-hour aggregate rates, so a generator with realistic diurnal shape —
//! a low night floor, a daytime ramp, an evening peak (match time), and
//! log-normal noise — exercises the identical code path. The same
//! per-class time-shift trick is applied.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};

use crate::trace::Trace;

/// Parameters of the diurnal generator.
#[derive(Debug, Clone)]
pub struct DiurnalConfig {
    /// Number of front-ends (each gets its own day profile).
    pub front_ends: usize,
    /// Number of request classes (each a time-shifted copy, per the paper).
    pub classes: usize,
    /// Number of hourly slots to generate (24 = one day).
    pub slots: usize,
    /// Peak aggregate rate per front-end per class (requests per hour).
    pub peak_rate: f64,
    /// Night-floor fraction of the peak (0..1).
    pub floor_fraction: f64,
    /// Hours by which consecutive classes are shifted.
    pub class_shift_hours: usize,
    /// Log-normal noise sigma (0 disables noise).
    pub noise_sigma: f64,
    /// RNG seed (traces are deterministic per seed).
    pub seed: u64,
}

impl Default for DiurnalConfig {
    fn default() -> Self {
        DiurnalConfig {
            front_ends: 4,
            classes: 3,
            slots: 24,
            peak_rate: 60_000.0,
            floor_fraction: 0.08,
            class_shift_hours: 2,
            noise_sigma: 0.08,
            seed: 1998, // the World Cup year
        }
    }
}

/// Normalized (0..=1) diurnal shape at hour-of-day `h` for day profile
/// `profile`: a daytime hump plus an evening "match-time" spike whose
/// position and relative height vary by profile — mimicking how different
/// World Cup days peak at different match hours.
pub fn diurnal_shape(h: f64, profile: usize) -> f64 {
    // Daytime hump centered around midday.
    let day_center = 12.0 + (profile % 3) as f64;
    let day = gaussian(h, day_center, 3.5);
    // Evening spike (match kick-off) between 17:00 and 19:00 by profile.
    let match_center = 17.0 + (profile % 3) as f64;
    let match_height = 1.0 + 0.25 * ((profile * 7 + 3) % 5) as f64 / 4.0;
    let evening = match_height * gaussian(h, match_center, 1.4);
    let raw = 0.75 * day + evening;
    // Normalize roughly to 1.0 at the highest point of this family.
    (raw / 1.45).min(1.0)
}

fn gaussian(x: f64, mu: f64, sigma: f64) -> f64 {
    let z = (x - mu) / sigma;
    (-0.5 * z * z).exp()
}

/// Generates the §VI-style trace.
pub fn generate(cfg: &DiurnalConfig) -> Trace {
    assert!(cfg.front_ends > 0 && cfg.classes > 0 && cfg.slots > 0);
    assert!(cfg.peak_rate > 0.0 && (0.0..1.0).contains(&cfg.floor_fraction));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let noise = if cfg.noise_sigma > 0.0 {
        // palb:allow(unwrap): sigma > 0 was just checked
        Some(LogNormal::new(0.0, cfg.noise_sigma).expect("valid sigma"))
    } else {
        None
    };

    let mut rates = Vec::with_capacity(cfg.slots);
    for t in 0..cfg.slots {
        let mut slot = Vec::with_capacity(cfg.front_ends);
        for s in 0..cfg.front_ends {
            let mut row = Vec::with_capacity(cfg.classes);
            for k in 0..cfg.classes {
                // Per-class shift: class k sees the curve k·shift hours ago.
                let h = ((t + 24 - (k * cfg.class_shift_hours) % 24) % 24) as f64;
                let shape = diurnal_shape(h, s);
                let base =
                    cfg.peak_rate * (cfg.floor_fraction + (1.0 - cfg.floor_fraction) * shape);
                let jitter = noise.as_ref().map_or(1.0, |n| n.sample(&mut rng));
                row.push(base * jitter);
            }
            slot.push(row);
        }
        rates.push(slot);
    }
    Trace::new(rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_trace_shape() {
        let tr = generate(&DiurnalConfig::default());
        assert_eq!(tr.slots(), 24);
        assert_eq!(tr.front_ends(), 4);
        assert_eq!(tr.classes(), 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&DiurnalConfig::default());
        let b = generate(&DiurnalConfig::default());
        assert_eq!(a, b);
        let c = generate(&DiurnalConfig {
            seed: 7,
            ..DiurnalConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn night_is_quieter_than_evening() {
        let cfg = DiurnalConfig {
            noise_sigma: 0.0,
            ..DiurnalConfig::default()
        };
        let tr = generate(&cfg);
        for s in 0..4 {
            let night = tr.rate(3, s, 0);
            let evening = tr.rate(19, s, 0);
            assert!(
                evening > 3.0 * night,
                "fe {s}: evening {evening} vs night {night}"
            );
        }
    }

    #[test]
    fn rates_bounded_by_peak_and_floor() {
        let cfg = DiurnalConfig {
            noise_sigma: 0.0,
            ..DiurnalConfig::default()
        };
        let tr = generate(&cfg);
        let floor = cfg.peak_rate * cfg.floor_fraction;
        for t in 0..tr.slots() {
            for s in 0..tr.front_ends() {
                for k in 0..tr.classes() {
                    let r = tr.rate(t, s, k);
                    assert!(r >= floor * 0.999 && r <= cfg.peak_rate * 1.001);
                }
            }
        }
    }

    #[test]
    fn classes_are_shifted_copies_without_noise() {
        let cfg = DiurnalConfig {
            noise_sigma: 0.0,
            class_shift_hours: 2,
            ..DiurnalConfig::default()
        };
        let tr = generate(&cfg);
        // class 1 at hour t equals class 0 at hour t-2 (mod 24).
        for t in 0..24 {
            let shifted = tr.rate(t, 0, 1);
            let original = tr.rate((t + 24 - 2) % 24, 0, 0);
            assert!(
                (shifted - original).abs() < 1e-9,
                "t={t}: {shifted} vs {original}"
            );
        }
    }

    #[test]
    fn front_ends_have_distinct_profiles() {
        let cfg = DiurnalConfig {
            noise_sigma: 0.0,
            ..DiurnalConfig::default()
        };
        let tr = generate(&cfg);
        // Day profiles differ: at least one hour where fe0 and fe1 diverge.
        let diverges = (0..24).any(|t| (tr.rate(t, 0, 0) - tr.rate(t, 1, 0)).abs() > 1.0);
        assert!(diverges);
    }

    #[test]
    fn trace_end_collapses() {
        // The last hours of the day fall well below the daily peak — the
        // feature that makes Optimized and Balanced converge at the end of
        // Fig. 6.
        let cfg = DiurnalConfig {
            noise_sigma: 0.0,
            ..DiurnalConfig::default()
        };
        let tr = generate(&cfg);
        let peak: f64 = (0..24).map(|t| tr.offered_in_slot(t)).fold(0.0, f64::max);
        assert!(tr.offered_in_slot(23) < 0.5 * peak);
    }
}
