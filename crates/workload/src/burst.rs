//! Bursty (Google-2010-cluster-like) trace generation — the §VII workload
//! substitute.
//!
//! The paper replays a 7-hour Google cluster task trace from a single
//! front-end, duplicated and time-shifted into two request classes. Cluster
//! task arrivals are piecewise-stationary with abrupt level shifts and
//! occasional submission bursts, so the generator draws a mean-reverting
//! level process with heavy-tailed burst multipliers. As with the diurnal
//! generator, only per-slot aggregate rates reach the optimizer, so this
//! preserves the exercised code path exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Pareto};

use crate::trace::Trace;

/// Parameters of the bursty generator.
#[derive(Debug, Clone)]
pub struct BurstConfig {
    /// Number of front-ends (the paper uses 1 in §VII).
    pub front_ends: usize,
    /// Number of classes (time-shifted duplicates, per the paper).
    pub classes: usize,
    /// Number of hourly slots (the Google trace spans 7 hours).
    pub slots: usize,
    /// Long-run mean aggregate rate per front-end per class (req/hour).
    pub mean_rate: f64,
    /// Mean-reversion strength of the level process (0..1, higher = calmer).
    pub reversion: f64,
    /// Probability of a burst in any slot.
    pub burst_prob: f64,
    /// Pareto tail exponent of burst multipliers (> 1).
    pub burst_alpha: f64,
    /// Hours by which consecutive classes are shifted.
    pub class_shift_hours: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            front_ends: 1,
            classes: 2,
            slots: 7,
            mean_rate: 60_000.0,
            reversion: 0.45,
            burst_prob: 0.35,
            burst_alpha: 2.5,
            class_shift_hours: 1,
            seed: 2010, // the Google trace year
        }
    }
}

/// Generates the base level sequence for one (front-end) stream: an AR(1)
/// mean-reverting walk in log-space with Pareto burst multipliers.
fn base_levels(cfg: &BurstConfig, rng: &mut StdRng) -> Vec<f64> {
    // palb:allow(unwrap): BurstConfig validation guarantees a positive alpha
    let pareto = Pareto::new(1.0, cfg.burst_alpha).expect("valid alpha");
    // Generate enough extra slots so shifted classes stay in-range.
    let horizon = cfg.slots + cfg.class_shift_hours * cfg.classes.saturating_sub(1);
    let mut levels = Vec::with_capacity(horizon);
    let mut log_dev = 0.0_f64; // log deviation from the mean rate
    for _ in 0..horizon {
        // AR(1): pull toward 0 with Gaussian-ish innovation (sum of uniforms).
        let innovation: f64 = (0..4).map(|_| rng.gen_range(-0.5..0.5)).sum::<f64>() * 0.35;
        log_dev = (1.0 - cfg.reversion) * log_dev + innovation;
        let mut rate = cfg.mean_rate * log_dev.exp();
        if rng.gen_bool(cfg.burst_prob) {
            // Burst: heavy-tailed multiplier, capped to keep the trace sane.
            let m: f64 = pareto.sample(rng);
            rate *= m.min(3.0);
        }
        levels.push(rate);
    }
    levels
}

/// Generates the §VII-style trace.
pub fn generate(cfg: &BurstConfig) -> Trace {
    assert!(cfg.front_ends > 0 && cfg.classes > 0 && cfg.slots > 0);
    assert!(cfg.mean_rate > 0.0 && (0.0..=1.0).contains(&cfg.burst_prob));
    assert!(cfg.burst_alpha > 1.0 && (0.0..1.0).contains(&cfg.reversion));
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // One level sequence per front-end; classes are shifted views of it —
    // exactly the paper's "duplicated the trace and moved along time scale".
    let streams: Vec<Vec<f64>> = (0..cfg.front_ends)
        .map(|_| base_levels(cfg, &mut rng))
        .collect();

    let mut rates = Vec::with_capacity(cfg.slots);
    for t in 0..cfg.slots {
        let mut slot = Vec::with_capacity(cfg.front_ends);
        for stream in &streams {
            let row: Vec<f64> = (0..cfg.classes)
                .map(|k| stream[t + k * cfg.class_shift_hours])
                .collect();
            slot.push(row);
        }
        rates.push(slot);
    }
    Trace::new(rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_matches_section_vii() {
        let tr = generate(&BurstConfig::default());
        assert_eq!(tr.slots(), 7);
        assert_eq!(tr.front_ends(), 1);
        assert_eq!(tr.classes(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate(&BurstConfig::default()),
            generate(&BurstConfig::default())
        );
        let other = generate(&BurstConfig {
            seed: 99,
            ..BurstConfig::default()
        });
        assert_ne!(generate(&BurstConfig::default()), other);
    }

    #[test]
    fn classes_are_shifted_duplicates() {
        let cfg = BurstConfig::default();
        let tr = generate(&cfg);
        // class 1 at slot t equals class 0 at slot t+shift.
        for t in 0..cfg.slots - cfg.class_shift_hours {
            assert_eq!(tr.rate(t, 0, 1), tr.rate(t + cfg.class_shift_hours, 0, 0));
        }
    }

    #[test]
    fn mean_rate_is_respected_in_aggregate() {
        // Across many slots the level process hovers near the mean.
        let cfg = BurstConfig {
            slots: 500,
            burst_prob: 0.0,
            seed: 3,
            ..BurstConfig::default()
        };
        let tr = generate(&cfg);
        let avg: f64 = (0..tr.slots()).map(|t| tr.rate(t, 0, 0)).sum::<f64>() / tr.slots() as f64;
        assert!(
            (avg / cfg.mean_rate - 1.0).abs() < 0.25,
            "avg {avg} vs mean {}",
            cfg.mean_rate
        );
    }

    #[test]
    fn bursts_create_spikes() {
        let calm = BurstConfig {
            burst_prob: 0.0,
            slots: 200,
            seed: 5,
            ..BurstConfig::default()
        };
        let bursty = BurstConfig {
            burst_prob: 0.5,
            slots: 200,
            seed: 5,
            ..BurstConfig::default()
        };
        let max_ratio = |cfg: &BurstConfig| {
            let tr = generate(cfg);
            let rates: Vec<f64> = (0..tr.slots()).map(|t| tr.rate(t, 0, 0)).collect();
            let mean: f64 = rates.iter().sum::<f64>() / rates.len() as f64;
            rates.iter().fold(0.0_f64, |m, &r| m.max(r)) / mean
        };
        assert!(max_ratio(&bursty) > max_ratio(&calm) * 0.9);
        // And bursty traces have a strictly larger peak.
        assert!(max_ratio(&bursty) > 1.5);
    }

    #[test]
    fn all_rates_positive() {
        let tr = generate(&BurstConfig {
            slots: 100,
            seed: 11,
            ..BurstConfig::default()
        });
        for t in 0..tr.slots() {
            assert!(tr.rate(t, 0, 0) > 0.0);
        }
    }
}
