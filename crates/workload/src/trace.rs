//! The [`Trace`] container: per-slot, per-front-end, per-class average
//! arrival rates.
//!
//! The paper's controller runs once per slot on the *average arrival rates
//! during the slot* (§III: "job interarrival times are much shorter
//! compared to a slot"), so a workload trace is exactly this three-way
//! array. Arrival-pattern forecasting is explicitly out of the paper's
//! scope, and of ours.

/// A workload trace: `rates[slot][front_end][class]`, in requests per time
/// unit (the same unit as the target [`System`]'s rates).
///
/// [`System`]: https://docs.rs/palb-cluster
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(try_from = "Vec<Vec<Vec<f64>>>", into = "Vec<Vec<Vec<f64>>>")]
pub struct Trace {
    rates: Vec<Vec<Vec<f64>>>,
    front_ends: usize,
    classes: usize,
}

impl TryFrom<Vec<Vec<Vec<f64>>>> for Trace {
    type Error = String;
    fn try_from(rates: Vec<Vec<Vec<f64>>>) -> Result<Self, String> {
        if rates.is_empty() {
            return Err("trace needs at least one slot".into());
        }
        let front_ends = rates[0].len();
        if front_ends == 0 {
            return Err("trace needs at least one front-end".into());
        }
        let classes = rates[0][0].len();
        if classes == 0 {
            return Err("trace needs at least one class".into());
        }
        for (t, slot) in rates.iter().enumerate() {
            if slot.len() != front_ends {
                return Err(format!("slot {t}: front-end count differs"));
            }
            for (s, row) in slot.iter().enumerate() {
                if row.len() != classes {
                    return Err(format!("slot {t} fe {s}: class count differs"));
                }
                for (k, &r) in row.iter().enumerate() {
                    if !(r.is_finite() && r >= 0.0) {
                        return Err(format!("slot {t} fe {s} class {k}: bad rate {r}"));
                    }
                }
            }
        }
        Ok(Trace {
            rates,
            front_ends,
            classes,
        })
    }
}

impl From<Trace> for Vec<Vec<Vec<f64>>> {
    fn from(t: Trace) -> Vec<Vec<Vec<f64>>> {
        t.rates
    }
}

impl Trace {
    /// Builds a trace from explicit rates, validating the shape.
    ///
    /// # Panics
    /// Panics on ragged arrays, empty dimensions, or negative rates.
    pub fn new(rates: Vec<Vec<Vec<f64>>>) -> Self {
        assert!(!rates.is_empty(), "trace needs at least one slot");
        let front_ends = rates[0].len();
        assert!(front_ends > 0, "trace needs at least one front-end");
        let classes = rates[0][0].len();
        assert!(classes > 0, "trace needs at least one class");
        for (t, slot) in rates.iter().enumerate() {
            assert_eq!(slot.len(), front_ends, "slot {t}: front-end count differs");
            for (s, row) in slot.iter().enumerate() {
                assert_eq!(row.len(), classes, "slot {t} fe {s}: class count differs");
                for (k, &r) in row.iter().enumerate() {
                    assert!(
                        r.is_finite() && r >= 0.0,
                        "slot {t} fe {s} class {k}: bad rate {r}"
                    );
                }
            }
        }
        Trace {
            rates,
            front_ends,
            classes,
        }
    }

    /// A single-slot trace from a `rates[front_end][class]` matrix.
    pub fn single_slot(matrix: Vec<Vec<f64>>) -> Self {
        Self::new(vec![matrix])
    }

    /// Builds a trace checking only the array *shape*, admitting NaN,
    /// infinite, and negative rates. This is the entry point for fault
    /// injection ([`crate::fault`]) and for replaying raw sensor feeds;
    /// consumers are expected to sanitize the values before optimizing.
    ///
    /// # Panics
    /// Panics on ragged arrays or empty dimensions (a shape-broken trace
    /// cannot even be indexed, so no sanitizer could repair it).
    pub fn new_unchecked(rates: Vec<Vec<Vec<f64>>>) -> Self {
        assert!(!rates.is_empty(), "trace needs at least one slot");
        let front_ends = rates[0].len();
        assert!(front_ends > 0, "trace needs at least one front-end");
        let classes = rates[0][0].len();
        assert!(classes > 0, "trace needs at least one class");
        for (t, slot) in rates.iter().enumerate() {
            assert_eq!(slot.len(), front_ends, "slot {t}: front-end count differs");
            for (s, row) in slot.iter().enumerate() {
                assert_eq!(row.len(), classes, "slot {t} fe {s}: class count differs");
            }
        }
        Trace {
            rates,
            front_ends,
            classes,
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.rates.len()
    }

    /// Number of front-ends.
    pub fn front_ends(&self) -> usize {
        self.front_ends
    }

    /// Number of request classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The `rates[front_end][class]` matrix for one slot.
    pub fn slot(&self, t: usize) -> &Vec<Vec<f64>> {
        &self.rates[t]
    }

    /// Rate for (slot, front-end, class).
    pub fn rate(&self, t: usize, s: usize, k: usize) -> f64 {
        self.rates[t][s][k]
    }

    /// Total offered rate in a slot (all front-ends and classes).
    pub fn offered_in_slot(&self, t: usize) -> f64 {
        self.rates[t].iter().flatten().sum()
    }

    /// Total offered rate of one class in a slot, summed over front-ends.
    pub fn offered_class_in_slot(&self, t: usize, k: usize) -> f64 {
        self.rates[t].iter().map(|row| row[k]).sum()
    }

    /// Grand total offered requests across the trace (rate × 1 slot each).
    pub fn total_offered(&self) -> f64 {
        (0..self.slots()).map(|t| self.offered_in_slot(t)).sum()
    }

    /// Returns a copy with every rate multiplied by `factor` (workload
    /// scaling for the §VII low/high studies, Fig. 10).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "bad scale {factor}");
        let rates = self
            .rates
            .iter()
            .map(|slot| {
                slot.iter()
                    .map(|row| row.iter().map(|r| r * factor).collect())
                    .collect()
            })
            .collect();
        Trace::new(rates)
    }

    /// Serializes to CSV: `slot,front_end,class,rate` with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("slot,front_end,class,rate\n");
        for (t, slot) in self.rates.iter().enumerate() {
            for (s, row) in slot.iter().enumerate() {
                for (k, &r) in row.iter().enumerate() {
                    out.push_str(&format!("{t},{s},{k},{r}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Trace {
        Trace::new(vec![
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            vec![vec![5.0, 6.0], vec![7.0, 8.0]],
        ])
    }

    #[test]
    fn shape_accessors() {
        let tr = t();
        assert_eq!(tr.slots(), 2);
        assert_eq!(tr.front_ends(), 2);
        assert_eq!(tr.classes(), 2);
        assert_eq!(tr.rate(1, 0, 1), 6.0);
    }

    #[test]
    fn offered_totals() {
        let tr = t();
        assert_eq!(tr.offered_in_slot(0), 10.0);
        assert_eq!(tr.offered_class_in_slot(0, 1), 6.0);
        assert_eq!(tr.total_offered(), 36.0);
    }

    #[test]
    fn scaling_is_uniform() {
        let tr = t().scaled(2.0);
        assert_eq!(tr.rate(0, 0, 0), 2.0);
        assert_eq!(tr.total_offered(), 72.0);
    }

    #[test]
    #[should_panic(expected = "class count differs")]
    fn ragged_rejected() {
        Trace::new(vec![vec![vec![1.0, 2.0], vec![3.0]]]);
    }

    #[test]
    #[should_panic(expected = "bad rate")]
    fn negative_rate_rejected() {
        Trace::new(vec![vec![vec![-1.0]]]);
    }

    #[test]
    fn csv_round_shape() {
        let csv = t().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "slot,front_end,class,rate");
        assert_eq!(lines.len(), 1 + 2 * 2 * 2);
        assert!(lines.contains(&"1,1,1,8"));
    }

    #[test]
    fn single_slot_constructor() {
        let tr = Trace::single_slot(vec![vec![9.0]]);
        assert_eq!(tr.slots(), 1);
        assert_eq!(tr.rate(0, 0, 0), 9.0);
    }
}
