//! Fault injection for robustness experiments.
//!
//! The degraded-mode controller (`palb_core::resilient`) is exercised by
//! corrupting the inputs the paper's controller observes at each slot
//! boundary: arrival-rate telemetry (NaN bursts, spikes, dropouts) and the
//! day-ahead electricity price feed. Everything here is driven by counter-
//! based hashing (splitmix64) rather than a stateful RNG, so a fault
//! pattern is a pure function of `(seed, coordinates)` — reproducible
//! across runs, platforms, and iteration orders.

use crate::Trace;

/// splitmix64 finalizer: avalanche one 64-bit word.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a seed plus up to three coordinates into a uniform f64 in [0, 1).
fn u01(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let h = mix(seed ^ mix(a ^ mix(b ^ mix(c))));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Configuration for [`inject_rate_faults`]: independent per-coordinate
/// corruption probabilities for the arrival-rate telemetry.
#[derive(Debug, Clone)]
pub struct RateFaultConfig {
    /// Seed for the deterministic fault pattern.
    pub seed: u64,
    /// Probability that a `(slot, front_end)` pair loses its whole rate
    /// vector to NaN (a front-end monitoring burst failure).
    pub nan_burst_prob: f64,
    /// Probability that a single `(slot, front_end, class)` rate is
    /// replaced by a negative glitch value.
    pub negative_prob: f64,
    /// Probability that a single rate is multiplied by [`Self::spike_factor`]
    /// (a mis-scaled counter, e.g. per-second reported as per-slot).
    pub spike_prob: f64,
    /// Multiplier applied by spike faults.
    pub spike_factor: f64,
}

impl Default for RateFaultConfig {
    fn default() -> Self {
        RateFaultConfig {
            seed: 0,
            nan_burst_prob: 0.05,
            negative_prob: 0.01,
            spike_prob: 0.01,
            spike_factor: 1e6,
        }
    }
}

/// Returns a copy of `trace` with rate-telemetry faults injected per `cfg`.
///
/// The result is built with [`Trace::new_unchecked`] and will generally
/// contain NaN and negative entries — it must be sanitized before being fed
/// to an optimizer that assumes clean rates.
pub fn inject_rate_faults(trace: &Trace, cfg: &RateFaultConfig) -> Trace {
    let mut rates: Vec<Vec<Vec<f64>>> = Vec::with_capacity(trace.slots());
    for t in 0..trace.slots() {
        let mut slot = Vec::with_capacity(trace.front_ends());
        for s in 0..trace.front_ends() {
            let burst = u01(cfg.seed, 1, t as u64, s as u64) < cfg.nan_burst_prob;
            let mut row = Vec::with_capacity(trace.classes());
            for k in 0..trace.classes() {
                let r = trace.rate(t, s, k);
                let coord = ((t as u64) << 32) | ((s as u64) << 16) | k as u64;
                let v = if burst {
                    f64::NAN
                } else if u01(cfg.seed, 2, coord, 0) < cfg.negative_prob {
                    -r - 1.0
                } else if u01(cfg.seed, 3, coord, 0) < cfg.spike_prob {
                    r * cfg.spike_factor
                } else {
                    r
                };
                row.push(v);
            }
            slot.push(row);
        }
        rates.push(slot);
    }
    Trace::new_unchecked(rates)
}

/// Corrupts a raw price feed in place: each entry independently becomes NaN
/// (feed dropout) with probability `dropout_prob`. Returns the number of
/// corrupted entries. Operates on a plain slice so callers can wrap the
/// result in whatever validated schedule type they use.
pub fn corrupt_price_feed(prices: &mut [f64], dropout_prob: f64, seed: u64) -> usize {
    let mut corrupted = 0;
    for (i, p) in prices.iter_mut().enumerate() {
        if u01(seed, 4, i as u64, 0) < dropout_prob {
            *p = f64::NAN;
            corrupted += 1;
        }
    }
    corrupted
}

/// A deterministic schedule of injected solver failures: `fails(slot,
/// attempt)` answers whether the chaos layer should make the solver fail on
/// `attempt` (0-based retry counter) within `slot`. Pure function of the
/// seed, so experiments are exactly reproducible.
#[derive(Debug, Clone)]
pub struct SolverFaultSchedule {
    /// Seed for the deterministic failure pattern.
    pub seed: u64,
    /// Per-attempt failure probability in [0, 1].
    pub prob: f64,
}

impl SolverFaultSchedule {
    /// Builds a schedule failing each solve attempt with probability `prob`.
    pub fn new(prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "bad probability {prob}");
        SolverFaultSchedule { seed, prob }
    }

    /// Whether the solver should be made to fail on `(slot, attempt)`.
    pub fn fails(&self, slot: usize, attempt: usize) -> bool {
        u01(self.seed, 5, slot as u64, attempt as u64) < self.prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::constant_trace;

    fn base() -> Trace {
        constant_trace(vec![vec![10.0, 20.0], vec![30.0, 40.0]], 50)
    }

    #[test]
    fn zero_probabilities_leave_trace_bit_identical() {
        let cfg = RateFaultConfig {
            nan_burst_prob: 0.0,
            negative_prob: 0.0,
            spike_prob: 0.0,
            ..RateFaultConfig::default()
        };
        assert_eq!(inject_rate_faults(&base(), &cfg), base());
    }

    #[test]
    fn same_seed_is_reproducible_and_seeds_differ() {
        let cfg = RateFaultConfig::default();
        let a = inject_rate_faults(&base(), &cfg);
        let b = inject_rate_faults(&base(), &cfg);
        // NaN != NaN, so compare via bit patterns.
        let bits = |tr: &Trace| -> Vec<u64> {
            (0..tr.slots())
                .flat_map(|t| {
                    (0..tr.front_ends())
                        .flat_map(move |s| (0..tr.classes()).map(move |k| (t, s, k)))
                })
                .map(|(t, s, k)| tr.rate(t, s, k).to_bits())
                .collect()
        };
        assert_eq!(bits(&a), bits(&b));
        let other = RateFaultConfig { seed: 99, ..cfg };
        assert_ne!(bits(&a), bits(&inject_rate_faults(&base(), &other)));
    }

    #[test]
    fn nan_burst_rate_is_roughly_the_configured_probability() {
        let cfg = RateFaultConfig {
            nan_burst_prob: 0.2,
            negative_prob: 0.0,
            spike_prob: 0.0,
            ..RateFaultConfig::default()
        };
        let faulted = inject_rate_faults(&base(), &cfg);
        let mut bursts = 0;
        for t in 0..faulted.slots() {
            for s in 0..faulted.front_ends() {
                if faulted.rate(t, s, 0).is_nan() {
                    bursts += 1;
                }
            }
        }
        let frac = bursts as f64 / (faulted.slots() * faulted.front_ends()) as f64;
        assert!((0.08..=0.35).contains(&frac), "burst fraction {frac}");
    }

    #[test]
    fn bursts_take_out_whole_front_end_rows() {
        let cfg = RateFaultConfig {
            nan_burst_prob: 0.3,
            negative_prob: 0.0,
            spike_prob: 0.0,
            ..RateFaultConfig::default()
        };
        let faulted = inject_rate_faults(&base(), &cfg);
        for t in 0..faulted.slots() {
            for s in 0..faulted.front_ends() {
                let nans: Vec<bool> = (0..faulted.classes())
                    .map(|k| faulted.rate(t, s, k).is_nan())
                    .collect();
                assert!(
                    nans.iter().all(|&x| x) || !nans.iter().any(|&x| x),
                    "partial burst at slot {t} fe {s}"
                );
            }
        }
    }

    #[test]
    fn price_corruption_counts_and_is_deterministic() {
        let mut a = vec![0.05; 200];
        let mut b = vec![0.05; 200];
        let na = corrupt_price_feed(&mut a, 0.25, 7);
        let nb = corrupt_price_feed(&mut b, 0.25, 7);
        assert_eq!(na, nb);
        assert!(na > 20 && na < 90, "corrupted {na} of 200");
        assert_eq!(a.iter().filter(|p| p.is_nan()).count(), na);
        let mut c = vec![0.05; 200];
        assert_eq!(corrupt_price_feed(&mut c, 0.0, 7), 0);
        assert!(c.iter().all(|&p| p == 0.05));
    }

    #[test]
    fn solver_schedule_hits_roughly_prob_and_varies_by_attempt() {
        let sched = SolverFaultSchedule::new(0.1, 42);
        let hits = (0..2000).filter(|&t| sched.fails(t, 0)).count();
        assert!((120..=280).contains(&hits), "hits {hits}");
        // Retry attempts draw fresh coins: some slot must differ between
        // attempt 0 and attempt 1.
        assert!((0..2000).any(|t| sched.fails(t, 0) != sched.fails(t, 1)));
        // And the schedule is a pure function: same query, same answer.
        assert_eq!(sched.fails(17, 0), sched.fails(17, 0));
    }
}
