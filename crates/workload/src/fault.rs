//! Fault injection for robustness experiments.
//!
//! The degraded-mode controller (`palb_core::resilient`) is exercised by
//! corrupting the inputs the paper's controller observes at each slot
//! boundary: arrival-rate telemetry (NaN bursts, spikes, dropouts) and the
//! day-ahead electricity price feed. Everything here is driven by counter-
//! based hashing (splitmix64) rather than a stateful RNG, so a fault
//! pattern is a pure function of `(seed, coordinates)` — reproducible
//! across runs, platforms, and iteration orders.

use crate::Trace;

/// A structured fault-configuration error: which field was rejected, the
/// offending value, and why. Returned by the `validate()` methods on the
/// fault configs and by the injectors themselves, so both library callers
/// and `palb stress` arg parsing share one boundary check.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfigError {
    /// Name of the rejected configuration field.
    pub field: &'static str,
    /// The offending value.
    pub value: f64,
    /// Human-readable reason the value was rejected.
    pub reason: &'static str,
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad fault config: {} = {} ({})",
            self.field, self.value, self.reason
        )
    }
}

impl std::error::Error for FaultConfigError {}

/// Checks that `value` is a probability in [0, 1].
fn check_prob(field: &'static str, value: f64) -> Result<(), FaultConfigError> {
    if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
        return Err(FaultConfigError {
            field,
            value,
            reason: "must be a probability in [0, 1]",
        });
    }
    Ok(())
}

/// splitmix64 finalizer: avalanche one 64-bit word.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a seed plus up to three coordinates into a uniform f64 in [0, 1).
pub(crate) fn u01(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let h = mix(seed ^ mix(a ^ mix(b ^ mix(c))));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Configuration for [`inject_rate_faults`]: independent per-coordinate
/// corruption probabilities for the arrival-rate telemetry.
#[derive(Debug, Clone)]
pub struct RateFaultConfig {
    /// Seed for the deterministic fault pattern.
    pub seed: u64,
    /// Probability that a `(slot, front_end)` pair loses its whole rate
    /// vector to NaN (a front-end monitoring burst failure).
    pub nan_burst_prob: f64,
    /// Probability that a single `(slot, front_end, class)` rate is
    /// replaced by a negative glitch value.
    pub negative_prob: f64,
    /// Probability that a single rate is multiplied by [`Self::spike_factor`]
    /// (a mis-scaled counter, e.g. per-second reported as per-slot).
    pub spike_prob: f64,
    /// Multiplier applied by spike faults.
    pub spike_factor: f64,
}

impl Default for RateFaultConfig {
    fn default() -> Self {
        RateFaultConfig {
            seed: 0,
            nan_burst_prob: 0.05,
            negative_prob: 0.01,
            spike_prob: 0.01,
            spike_factor: 1e6,
        }
    }
}

impl RateFaultConfig {
    /// Validates the configuration at the library boundary: every
    /// probability must lie in [0, 1] and `spike_factor` must be finite.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        check_prob("nan_burst_prob", self.nan_burst_prob)?;
        check_prob("negative_prob", self.negative_prob)?;
        check_prob("spike_prob", self.spike_prob)?;
        if !self.spike_factor.is_finite() {
            return Err(FaultConfigError {
                field: "spike_factor",
                value: self.spike_factor,
                reason: "must be finite",
            });
        }
        Ok(())
    }
}

/// Returns a copy of `trace` with rate-telemetry faults injected per `cfg`,
/// or a [`FaultConfigError`] when `cfg` fails [`RateFaultConfig::validate`].
///
/// The result is built with [`Trace::new_unchecked`] and will generally
/// contain NaN and negative entries — it must be sanitized before being fed
/// to an optimizer that assumes clean rates.
pub fn inject_rate_faults(trace: &Trace, cfg: &RateFaultConfig) -> Result<Trace, FaultConfigError> {
    cfg.validate()?;
    let mut rates: Vec<Vec<Vec<f64>>> = Vec::with_capacity(trace.slots());
    for t in 0..trace.slots() {
        let mut slot = Vec::with_capacity(trace.front_ends());
        for s in 0..trace.front_ends() {
            let burst = u01(cfg.seed, 1, t as u64, s as u64) < cfg.nan_burst_prob;
            let mut row = Vec::with_capacity(trace.classes());
            for k in 0..trace.classes() {
                let r = trace.rate(t, s, k);
                let coord = ((t as u64) << 32) | ((s as u64) << 16) | k as u64;
                let v = if burst {
                    f64::NAN
                } else if u01(cfg.seed, 2, coord, 0) < cfg.negative_prob {
                    -r - 1.0
                } else if u01(cfg.seed, 3, coord, 0) < cfg.spike_prob {
                    r * cfg.spike_factor
                } else {
                    r
                };
                row.push(v);
            }
            slot.push(row);
        }
        rates.push(slot);
    }
    Ok(Trace::new_unchecked(rates))
}

/// Configuration for [`corrupt_price_feed`]: independent per-entry dropout
/// plus an optional contiguous price-shock window, so price faults compose
/// with the scenario engine ([`crate::scenario`]).
#[derive(Debug, Clone)]
pub struct PriceFaultConfig {
    /// Seed for the deterministic corruption pattern.
    pub seed: u64,
    /// Probability that an entry becomes NaN (feed dropout).
    pub dropout_prob: f64,
    /// Multiplier applied to entries inside the shock window (1.0 = none).
    pub shock_factor: f64,
    /// First entry index of the shock window.
    pub shock_start: usize,
    /// Number of consecutive entries the shock lasts (0 disables it).
    pub shock_duration: usize,
}

impl Default for PriceFaultConfig {
    fn default() -> Self {
        PriceFaultConfig {
            seed: 0,
            dropout_prob: 0.0,
            shock_factor: 1.0,
            shock_start: 0,
            shock_duration: 0,
        }
    }
}

impl PriceFaultConfig {
    /// A dropout-only config — the shape of the old bare
    /// `(dropout_prob, seed)` call sites.
    pub fn dropout(dropout_prob: f64, seed: u64) -> Self {
        PriceFaultConfig {
            seed,
            dropout_prob,
            ..PriceFaultConfig::default()
        }
    }

    /// Validates the configuration: `dropout_prob` must be a probability
    /// and `shock_factor` finite and non-negative.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        check_prob("dropout_prob", self.dropout_prob)?;
        if !(self.shock_factor.is_finite() && self.shock_factor >= 0.0) {
            return Err(FaultConfigError {
                field: "shock_factor",
                value: self.shock_factor,
                reason: "must be finite and non-negative",
            });
        }
        Ok(())
    }
}

/// Corrupts a raw price feed in place per `cfg`: each entry independently
/// becomes NaN (feed dropout), and entries inside the shock window are
/// multiplied by `shock_factor`. Returns the number of touched entries, or
/// a [`FaultConfigError`] when `cfg` fails validation. Operates on a plain
/// slice so callers can wrap the result in whatever validated schedule type
/// they use.
///
/// Dropout draws from the same hash stream as before this config existed,
/// so a dropout-only config reproduces the historical fault pattern for a
/// given seed bit-for-bit.
pub fn corrupt_price_feed(
    prices: &mut [f64],
    cfg: &PriceFaultConfig,
) -> Result<usize, FaultConfigError> {
    cfg.validate()?;
    let shock_end = cfg.shock_start.saturating_add(cfg.shock_duration);
    let mut corrupted = 0;
    for (i, p) in prices.iter_mut().enumerate() {
        if u01(cfg.seed, 4, i as u64, 0) < cfg.dropout_prob {
            *p = f64::NAN;
            corrupted += 1;
        } else if cfg.shock_duration > 0 && i >= cfg.shock_start && i < shock_end {
            *p *= cfg.shock_factor;
            corrupted += 1;
        }
    }
    Ok(corrupted)
}

/// A deterministic schedule of injected solver failures: `fails(slot,
/// attempt)` answers whether the chaos layer should make the solver fail on
/// `attempt` (0-based retry counter) within `slot`. Pure function of the
/// seed, so experiments are exactly reproducible.
#[derive(Debug, Clone)]
pub struct SolverFaultSchedule {
    /// Seed for the deterministic failure pattern.
    pub seed: u64,
    /// Per-attempt failure probability in [0, 1].
    pub prob: f64,
    /// Optional per-slot probability overrides (slot-windowed solver
    /// outages from the scenario engine); slots beyond the vector fall
    /// back to `prob`.
    per_slot: Vec<f64>,
}

impl SolverFaultSchedule {
    /// Builds a schedule failing each solve attempt with probability `prob`.
    ///
    /// # Panics
    /// Panics when `prob` falls outside [0, 1].
    pub fn new(prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "bad probability {prob}");
        SolverFaultSchedule {
            seed,
            prob,
            per_slot: Vec::new(),
        }
    }

    /// Builds a schedule with a per-slot failure probability; slots beyond
    /// the vector never fail. Used by scenario stacks that window solver
    /// outages to specific slots.
    ///
    /// # Panics
    /// Panics when any probability falls outside [0, 1].
    pub fn per_slot(probs: Vec<f64>, seed: u64) -> Self {
        for &p in &probs {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "bad probability {p}"
            );
        }
        SolverFaultSchedule {
            seed,
            prob: 0.0,
            per_slot: probs,
        }
    }

    /// The failure probability in effect for `slot`.
    pub fn prob_at(&self, slot: usize) -> f64 {
        self.per_slot.get(slot).copied().unwrap_or(self.prob)
    }

    /// Whether any slot can fail at all (all-zero schedules are no-ops).
    pub fn is_active(&self) -> bool {
        self.prob > 0.0 || self.per_slot.iter().any(|&p| p > 0.0)
    }

    /// Whether the solver should be made to fail on `(slot, attempt)`.
    pub fn fails(&self, slot: usize, attempt: usize) -> bool {
        u01(self.seed, 5, slot as u64, attempt as u64) < self.prob_at(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::constant_trace;

    fn base() -> Trace {
        constant_trace(vec![vec![10.0, 20.0], vec![30.0, 40.0]], 50)
    }

    #[test]
    fn zero_probabilities_leave_trace_bit_identical() {
        let cfg = RateFaultConfig {
            nan_burst_prob: 0.0,
            negative_prob: 0.0,
            spike_prob: 0.0,
            ..RateFaultConfig::default()
        };
        assert_eq!(inject_rate_faults(&base(), &cfg).unwrap(), base());
    }

    #[test]
    fn same_seed_is_reproducible_and_seeds_differ() {
        let cfg = RateFaultConfig::default();
        let a = inject_rate_faults(&base(), &cfg).unwrap();
        let b = inject_rate_faults(&base(), &cfg).unwrap();
        // NaN != NaN, so compare via bit patterns.
        let bits = |tr: &Trace| -> Vec<u64> {
            (0..tr.slots())
                .flat_map(|t| {
                    (0..tr.front_ends())
                        .flat_map(move |s| (0..tr.classes()).map(move |k| (t, s, k)))
                })
                .map(|(t, s, k)| tr.rate(t, s, k).to_bits())
                .collect()
        };
        assert_eq!(bits(&a), bits(&b));
        let other = RateFaultConfig { seed: 99, ..cfg };
        assert_ne!(
            bits(&a),
            bits(&inject_rate_faults(&base(), &other).unwrap())
        );
    }

    #[test]
    fn nan_burst_rate_is_roughly_the_configured_probability() {
        let cfg = RateFaultConfig {
            nan_burst_prob: 0.2,
            negative_prob: 0.0,
            spike_prob: 0.0,
            ..RateFaultConfig::default()
        };
        let faulted = inject_rate_faults(&base(), &cfg).unwrap();
        let mut bursts = 0;
        for t in 0..faulted.slots() {
            for s in 0..faulted.front_ends() {
                if faulted.rate(t, s, 0).is_nan() {
                    bursts += 1;
                }
            }
        }
        let frac = bursts as f64 / (faulted.slots() * faulted.front_ends()) as f64;
        assert!((0.08..=0.35).contains(&frac), "burst fraction {frac}");
    }

    #[test]
    fn bursts_take_out_whole_front_end_rows() {
        let cfg = RateFaultConfig {
            nan_burst_prob: 0.3,
            negative_prob: 0.0,
            spike_prob: 0.0,
            ..RateFaultConfig::default()
        };
        let faulted = inject_rate_faults(&base(), &cfg).unwrap();
        for t in 0..faulted.slots() {
            for s in 0..faulted.front_ends() {
                let nans: Vec<bool> = (0..faulted.classes())
                    .map(|k| faulted.rate(t, s, k).is_nan())
                    .collect();
                assert!(
                    nans.iter().all(|&x| x) || !nans.iter().any(|&x| x),
                    "partial burst at slot {t} fe {s}"
                );
            }
        }
    }

    #[test]
    fn price_corruption_counts_and_is_deterministic() {
        let mut a = vec![0.05; 200];
        let mut b = vec![0.05; 200];
        let na = corrupt_price_feed(&mut a, &PriceFaultConfig::dropout(0.25, 7)).unwrap();
        let nb = corrupt_price_feed(&mut b, &PriceFaultConfig::dropout(0.25, 7)).unwrap();
        assert_eq!(na, nb);
        assert!(na > 20 && na < 90, "corrupted {na} of 200");
        assert_eq!(a.iter().filter(|p| p.is_nan()).count(), na);
        let mut c = vec![0.05; 200];
        assert_eq!(
            corrupt_price_feed(&mut c, &PriceFaultConfig::dropout(0.0, 7)).unwrap(),
            0
        );
        assert!(c.iter().all(|&p| p == 0.05));
    }

    #[test]
    fn solver_schedule_hits_roughly_prob_and_varies_by_attempt() {
        let sched = SolverFaultSchedule::new(0.1, 42);
        let hits = (0..2000).filter(|&t| sched.fails(t, 0)).count();
        assert!((120..=280).contains(&hits), "hits {hits}");
        // Retry attempts draw fresh coins: some slot must differ between
        // attempt 0 and attempt 1.
        assert!((0..2000).any(|t| sched.fails(t, 0) != sched.fails(t, 1)));
        // And the schedule is a pure function: same query, same answer.
        assert_eq!(sched.fails(17, 0), sched.fails(17, 0));
    }

    #[test]
    fn per_slot_schedule_windows_failures() {
        let mut probs = vec![0.0; 24];
        for p in probs.iter_mut().take(12).skip(8) {
            *p = 1.0;
        }
        let sched = SolverFaultSchedule::per_slot(probs, 7);
        assert!(sched.is_active());
        for t in 0..24 {
            assert_eq!(sched.fails(t, 0), (8..12).contains(&t), "slot {t}");
        }
        // Slots beyond the vector fall back to the base prob (0 here).
        assert!(!sched.fails(1000, 0));
        // A flat schedule built via `new` matches the per-slot stream on
        // the same seed (both draw from hash stream 5).
        let flat = SolverFaultSchedule::new(0.5, 7);
        let windowed = SolverFaultSchedule::per_slot(vec![0.5; 24], 7);
        for t in 0..24 {
            assert_eq!(flat.fails(t, 0), windowed.fails(t, 0));
        }
    }

    #[test]
    fn rate_fault_config_validation_rejects_bad_fields() {
        let bad_prob = RateFaultConfig {
            nan_burst_prob: 1.5,
            ..RateFaultConfig::default()
        };
        let err = bad_prob.validate().unwrap_err();
        assert_eq!(err.field, "nan_burst_prob");
        assert!(err.to_string().contains("1.5"));
        assert!(inject_rate_faults(&base(), &bad_prob).is_err());

        let nan_prob = RateFaultConfig {
            negative_prob: f64::NAN,
            ..RateFaultConfig::default()
        };
        assert_eq!(nan_prob.validate().unwrap_err().field, "negative_prob");

        let bad_spike = RateFaultConfig {
            spike_factor: f64::INFINITY,
            ..RateFaultConfig::default()
        };
        assert_eq!(bad_spike.validate().unwrap_err().field, "spike_factor");

        assert!(RateFaultConfig::default().validate().is_ok());
    }

    #[test]
    fn price_fault_config_validation_and_shock_window() {
        let bad = PriceFaultConfig::dropout(-0.1, 0);
        assert_eq!(bad.validate().unwrap_err().field, "dropout_prob");
        let bad_shock = PriceFaultConfig {
            shock_factor: -2.0,
            ..PriceFaultConfig::default()
        };
        assert_eq!(bad_shock.validate().unwrap_err().field, "shock_factor");

        // Shock multiplies exactly the windowed entries.
        let mut feed = vec![0.04; 24];
        let cfg = PriceFaultConfig {
            shock_factor: 5.0,
            shock_start: 10,
            shock_duration: 4,
            ..PriceFaultConfig::default()
        };
        let touched = corrupt_price_feed(&mut feed, &cfg).unwrap();
        assert_eq!(touched, 4);
        for (i, &p) in feed.iter().enumerate() {
            let expect = if (10..14).contains(&i) { 0.20 } else { 0.04 };
            assert!((p - expect).abs() < 1e-12, "entry {i}: {p}");
        }
    }

    #[test]
    fn dropout_only_config_matches_historical_stream() {
        // The dropout hash stream predates PriceFaultConfig; a dropout-only
        // config must reproduce the same NaN pattern for a given seed.
        let mut feed = vec![0.05; 200];
        let n = corrupt_price_feed(&mut feed, &PriceFaultConfig::dropout(0.25, 7)).unwrap();
        let pattern: Vec<bool> = feed.iter().map(|p| p.is_nan()).collect();
        let expected: Vec<bool> = (0..200u64).map(|i| u01(7, 4, i, 0) < 0.25).collect();
        assert_eq!(pattern, expected);
        assert_eq!(n, expected.iter().filter(|&&x| x).count());
    }
}
