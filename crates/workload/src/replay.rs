//! Seed-pure request-level replay of a rate-level [`Trace`] slot.
//!
//! The optimizer consumes *average per-slot arrival rates*; the serving
//! layer (`palb-serve`) needs individual requests. [`ReplayStream`]
//! bridges the two: it turns one slot's `front-ends × classes` rate
//! matrix into a per-request arrival generator where request `i` is a
//! **pure function of `(seed, slot, i)`** — the same counter-based
//! splitmix64 hashing as [`crate::fault`], so replays are reproducible
//! across runs, platforms, thread counts, and iteration orders, and any
//! worker can generate any request index without coordination.
//!
//! Cell selection uses [`AliasTable`] (Vose's alias method): O(1) per
//! request, two table reads and one comparison, no allocation.
//!
//! A stream can carry an optional mid-slot [`shift`](ReplayStream::with_shift)
//! to a second rate matrix — the substrate for drift-detection tests: the
//! offered mix changes at a known request index while the published plan
//! still reflects the boundary matrix.

use crate::fault::mix;
use crate::Trace;

/// The splitmix64 finalizer used by all counter-based hashing in this
/// crate, exported for downstream consumers (the serving layer derives
/// independent per-request route words from it). Avalanches one 64-bit
/// word; `mix64` of a counter sequence is a high-quality stateless RNG.
// palb:hot-path(no-alloc)
pub fn mix64(z: u64) -> u64 {
    mix(z)
}

/// Vose alias-method sampler over a fixed weight vector: O(1) draws from
/// a categorical distribution using a single pre-mixed 64-bit word.
///
/// The upper 32 bits of the word pick a column, the lower 32 bits decide
/// between the column's own index and its alias. Build cost is O(n);
/// sampling is branch-light and allocation-free.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Per-column acceptance threshold in fixed-point 2^32 scale.
    prob: Vec<u32>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the alias table for `weights`.
    ///
    /// Returns `None` when `weights` is empty, contains a negative or
    /// non-finite entry, or has no positive mass — there is no
    /// distribution to sample in any of those cases.
    pub fn from_weights(weights: &[f64]) -> Option<AliasTable> {
        let n = weights.len();
        if n == 0 || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return None;
        }
        // Vose: split columns into small (< 1) and large (>= 1) piles and
        // pair each small column with a large donor.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / sum).collect();
        let mut prob = vec![u32::MAX; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            // Threshold in 2^32 fixed point; scaled[s] < 1 so no overflow.
            prob[s] = (scaled[s] * 4_294_967_296.0) as u32;
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (numerical dust) saturate to "always self".
        for i in small {
            prob[i] = u32::MAX;
        }
        for i in large {
            prob[i] = u32::MAX;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (never constructed so —
    /// [`AliasTable::from_weights`] rejects empty weights).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index from one pre-mixed 64-bit word.
    // palb:hot-path(no-alloc)
    pub fn sample(&self, word: u64) -> usize {
        let i = ((word >> 32) as usize) % self.prob.len();
        let frac = word as u32;
        if frac < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// The optional mid-slot rate shift carried by a [`ReplayStream`].
#[derive(Debug, Clone)]
struct Shift {
    /// First request index drawn from the shifted matrix.
    at: u64,
    cells: Vec<(u32, u32)>,
    table: AliasTable,
    total_rate: f64,
}

/// A seed-pure per-request arrival generator over one slot's rate matrix.
///
/// Request `i` maps deterministically to a `(front_end, class)` pair with
/// probability proportional to the slot's rate matrix — see the
/// [module docs](self) for the purity contract.
#[derive(Debug, Clone)]
pub struct ReplayStream {
    seed: u64,
    slot: u64,
    front_ends: usize,
    classes: usize,
    total_rate: f64,
    /// Positive-rate cells as `(front_end, class)`, indexed by the alias
    /// table's categories.
    cells: Vec<(u32, u32)>,
    table: AliasTable,
    shift: Option<Shift>,
}

/// Flattens a rate matrix into its positive cells + alias table.
fn build_cells(rates: &[Vec<f64>]) -> Option<(Vec<(u32, u32)>, AliasTable, f64)> {
    let mut cells = Vec::new();
    let mut weights = Vec::new();
    let mut total = 0.0;
    for (s, row) in rates.iter().enumerate() {
        for (k, &r) in row.iter().enumerate() {
            if !r.is_finite() || r < 0.0 {
                return None;
            }
            if r > 0.0 {
                cells.push((s as u32, k as u32));
                weights.push(r);
                total += r;
            }
        }
    }
    let table = AliasTable::from_weights(&weights)?;
    Some((cells, table, total))
}

impl ReplayStream {
    /// A stream over `rates[front_end][class]`, tagged with the slot index
    /// it replays (part of the hash domain, so different slots of the same
    /// trace produce decorrelated request sequences).
    ///
    /// Returns `None` when the matrix has no positive finite rate — an
    /// all-idle slot offers no requests to replay.
    pub fn from_rates(rates: &[Vec<f64>], slot: usize, seed: u64) -> Option<ReplayStream> {
        let front_ends = rates.len();
        let classes = rates.first().map(|r| r.len()).unwrap_or(0);
        let (cells, table, total_rate) = build_cells(rates)?;
        Some(ReplayStream {
            seed,
            slot: slot as u64,
            front_ends,
            classes,
            total_rate,
            cells,
            table,
            shift: None,
        })
    }

    /// A stream over slot `slot` of `trace`.
    pub fn for_slot(trace: &Trace, slot: usize, seed: u64) -> Option<ReplayStream> {
        ReplayStream::from_rates(trace.slot(slot), slot, seed)
    }

    /// Overlays a mid-slot drift: requests with index `>= at_request` are
    /// drawn from `rates` instead of the boundary matrix. Returns `None`
    /// when the shifted matrix has no positive finite rate.
    pub fn with_shift(mut self, at_request: u64, rates: &[Vec<f64>]) -> Option<ReplayStream> {
        let (cells, table, total_rate) = build_cells(rates)?;
        self.shift = Some(Shift {
            at: at_request,
            cells,
            table,
            total_rate,
        });
        Some(self)
    }

    /// Front-end count of the replayed matrix.
    pub fn front_ends(&self) -> usize {
        self.front_ends
    }

    /// Class count of the replayed matrix.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The slot index this stream replays.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }

    /// Aggregate offered rate of the matrix active at request `i`
    /// (requests per time unit — the boundary matrix before the shift
    /// point, the shifted matrix after).
    pub fn total_rate_at(&self, i: u64) -> f64 {
        match &self.shift {
            Some(sh) if i >= sh.at => sh.total_rate,
            _ => self.total_rate,
        }
    }

    /// Aggregate offered rate of the boundary matrix.
    pub fn total_rate(&self) -> f64 {
        self.total_rate
    }

    /// The `(front_end, class)` tag of request `i` — a pure function of
    /// `(seed, slot, i)`.
    // palb:hot-path(no-alloc)
    pub fn request(&self, i: u64) -> (usize, usize) {
        let w = mix(self.seed ^ mix(self.slot ^ mix(i)));
        let (cells, table) = match &self.shift {
            Some(sh) if i >= sh.at => (&sh.cells, &sh.table),
            _ => (&self.cells, &self.table),
        };
        let cell = cells[table.sample(w)];
        (cell.0 as usize, cell.1 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_table_rejects_degenerate_weights() {
        assert!(AliasTable::from_weights(&[]).is_none());
        assert!(AliasTable::from_weights(&[0.0, 0.0]).is_none());
        assert!(AliasTable::from_weights(&[1.0, -0.5]).is_none());
        assert!(AliasTable::from_weights(&[1.0, f64::NAN]).is_none());
        assert!(AliasTable::from_weights(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn alias_table_single_category_always_wins() {
        let t = AliasTable::from_weights(&[3.5]).unwrap();
        for i in 0..64 {
            assert_eq!(t.sample(mix(i)), 0);
        }
    }

    #[test]
    fn alias_table_matches_weights_empirically() {
        let weights = [1.0, 2.0, 7.0];
        let t = AliasTable::from_weights(&weights).unwrap();
        let n = 200_000u64;
        let mut counts = [0u64; 3];
        for i in 0..n {
            counts[t.sample(mix(i))] += 1;
        }
        for (c, w) in counts.iter().zip(weights.iter()) {
            let got = *c as f64 / n as f64;
            let want = w / 10.0;
            assert!(
                (got - want).abs() < 0.01,
                "category fraction {got} vs expected {want}"
            );
        }
    }

    #[test]
    fn alias_table_zero_weight_category_never_sampled() {
        let t = AliasTable::from_weights(&[0.0, 1.0, 0.0, 3.0]).unwrap();
        for i in 0..10_000 {
            let c = t.sample(mix(i));
            assert!(c == 1 || c == 3, "sampled zero-weight category {c}");
        }
    }

    #[test]
    fn stream_is_a_pure_function_of_seed_slot_index() {
        let rates = vec![vec![5.0, 1.0], vec![0.0, 4.0]];
        let a = ReplayStream::from_rates(&rates, 3, 42).unwrap();
        let b = ReplayStream::from_rates(&rates, 3, 42).unwrap();
        for i in (0..5000).chain([u64::MAX - 1]) {
            assert_eq!(a.request(i), b.request(i));
        }
        // A different seed or slot decorrelates the sequence.
        let c = ReplayStream::from_rates(&rates, 3, 43).unwrap();
        let d = ReplayStream::from_rates(&rates, 4, 42).unwrap();
        assert!((0..64).any(|i| a.request(i) != c.request(i)));
        assert!((0..64).any(|i| a.request(i) != d.request(i)));
    }

    #[test]
    fn stream_mix_tracks_rate_matrix() {
        let rates = vec![vec![6.0, 2.0], vec![0.0, 2.0]];
        let st = ReplayStream::from_rates(&rates, 0, 7).unwrap();
        assert_eq!(st.total_rate(), 10.0);
        let n = 100_000u64;
        let mut counts = std::collections::HashMap::new();
        for i in 0..n {
            *counts.entry(st.request(i)).or_insert(0u64) += 1;
        }
        assert!(!counts.contains_key(&(1, 0)), "zero-rate cell was sampled");
        for ((s, k), want) in [((0, 0), 0.6), ((0, 1), 0.2), ((1, 1), 0.2)] {
            let got = *counts.get(&(s, k)).unwrap() as f64 / n as f64;
            assert!(
                (got - want).abs() < 0.01,
                "cell ({s},{k}) fraction {got} vs {want}"
            );
        }
    }

    #[test]
    fn zero_matrix_offers_no_stream() {
        assert!(ReplayStream::from_rates(&[vec![0.0, 0.0]], 0, 1).is_none());
    }

    #[test]
    fn shift_switches_matrix_exactly_at_the_boundary() {
        // Boundary matrix: all mass on (0, 0); shifted: all on (1, 1).
        let base = vec![vec![4.0, 0.0], vec![0.0, 0.0]];
        let after = vec![vec![0.0, 0.0], vec![0.0, 9.0]];
        let st = ReplayStream::from_rates(&base, 0, 11)
            .unwrap()
            .with_shift(1000, &after)
            .unwrap();
        for i in 0..1000 {
            assert_eq!(st.request(i), (0, 0));
        }
        for i in 1000..2000 {
            assert_eq!(st.request(i), (1, 1));
        }
        assert_eq!(st.total_rate_at(999), 4.0);
        assert_eq!(st.total_rate_at(1000), 9.0);
    }

    #[test]
    fn for_slot_reads_the_right_slot() {
        let trace = Trace::new(vec![
            vec![vec![1.0, 0.0]],
            vec![vec![0.0, 3.0]], // slot 1: all mass on class 1
        ]);
        let st = ReplayStream::for_slot(&trace, 1, 5).unwrap();
        assert_eq!(st.slot(), 1);
        for i in 0..100 {
            assert_eq!(st.request(i), (0, 1));
        }
    }
}
