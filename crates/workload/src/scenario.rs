//! Composable adversarial scenarios: named, deterministic stacks of
//! perturbations over arrival rates, electricity prices, system parameters,
//! and solver availability.
//!
//! A [`Scenario`] is an ordered stack of [`Perturbation`]s. Applying a
//! scenario is a pure function of `(scenario, seed)`: every perturbation
//! derives its own hash-stream seed from the stack seed and its position,
//! so the same seed reproduces the same perturbed world bit-for-bit across
//! runs, platforms, and solver thread counts. No stateful RNG is involved
//! anywhere — randomness comes from the same counter-based splitmix64
//! streams as [`crate::fault`].
//!
//! Perturbations act on four surfaces:
//!
//! * **rates** — the raw `slots × front-ends × classes` grid of a [`Trace`]
//!   (flash crowds, drifting misforecasts, telemetry faults);
//! * **prices** — one hourly feed per data center (shocks, oscillations,
//!   feed dropouts);
//! * **system parameters** — abstract [`SlotEffect`]s (server-count
//!   collapse, transfer-cost spikes) that a consumer with access to the
//!   cluster model materializes per slot (`palb_core::scenario`);
//! * **solver availability** — per-slot failure probabilities consumed via
//!   [`crate::fault::SolverFaultSchedule::per_slot`].
//!
//! The built-in library ([`builtin`]) covers the stress matrix the bench
//! harness scores: flash crowd, price shock, price-correlated load
//! oscillation, DC outage, transfer-cost spike, slow-drift misforecast,
//! telemetry chaos, and a combined black-swan stack.

use crate::fault::{
    corrupt_price_feed, mix, u01, FaultConfigError, PriceFaultConfig, RateFaultConfig,
};
use crate::Trace;

/// The raw rate grid a scenario perturbs: `rates[slot][front_end][class]`.
pub type RateGrid = Vec<Vec<Vec<f64>>>;

/// An abstract per-slot system-parameter effect. `palb_workload` cannot see
/// the cluster model, so effects are plain data; `palb_core::scenario`
/// materializes them into per-slot patched systems.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotEffect {
    /// Multiply the server count of data center `dc` by `factor` during
    /// `slot` (floored, but never below one server). Models a partial or
    /// near-total DC outage.
    ServerFactor {
        /// Slot the effect applies to.
        slot: usize,
        /// Data-center index.
        dc: usize,
        /// Multiplier on the server count (in [0, 1] for an outage).
        factor: f64,
    },
    /// Multiply the front-end → data-center distance (and hence the
    /// transfer cost) by `factor` during `slot`. `dc = None` hits every
    /// data center (a global network event).
    TransferFactor {
        /// Slot the effect applies to.
        slot: usize,
        /// Data-center index, or `None` for all.
        dc: Option<usize>,
        /// Multiplier on the distance column.
        factor: f64,
    },
}

/// A deterministic, seed-driven perturbation over one or more scenario
/// surfaces. All methods default to no-ops so an implementation only
/// overrides the surfaces it touches. Implementations must be pure
/// functions of `(self, seed, coordinates)` — the determinism contract the
/// scorecard baseline depends on.
pub trait Perturbation: std::fmt::Debug {
    /// Short identifier used in scenario descriptions and counters.
    fn name(&self) -> &'static str;

    /// Validates the perturbation's parameters at the library boundary.
    fn validate(&self) -> Result<(), FaultConfigError>;

    /// Mutates the arrival-rate grid in place.
    fn apply_rates(&self, _grid: &mut RateGrid, _seed: u64) {}

    /// Mutates data center `dc`'s hourly price feed in place.
    fn apply_prices(&self, _dc: usize, _num_dcs: usize, _feed: &mut [f64], _seed: u64) {}

    /// Appends per-slot system-parameter effects for a horizon of `slots`.
    fn system_effects(&self, _slots: usize, _num_dcs: usize, _out: &mut Vec<SlotEffect>) {}

    /// Probability that a solve attempt fails during `slot`.
    fn solver_fail_prob(&self, _slot: usize) -> f64 {
        0.0
    }
}

/// Periodic triangle wave: maps `phase` (period 1) to [-1, 1] with
/// `triangle(0) = 0`, `triangle(0.25) = 1`, `triangle(0.75) = -1`.
///
/// Used instead of a sine so perturbed feeds stay bit-identical across
/// libm implementations (the wave is pure `+ * /` IEEE arithmetic).
fn triangle(phase: f64) -> f64 {
    let x = phase - phase.floor();
    if x < 0.25 {
        4.0 * x
    } else if x < 0.75 {
        2.0 - 4.0 * x
    } else {
        4.0 * x - 4.0
    }
}

fn check_factor(field: &'static str, value: f64, min: f64) -> Result<(), FaultConfigError> {
    if !(value.is_finite() && value >= min) {
        return Err(FaultConfigError {
            field,
            value,
            reason: "must be finite and within range",
        });
    }
    Ok(())
}

/// A regional flash crowd: one front-end's arrival rates ramp up to
/// `peak_factor` × baseline, hold, and decay back, all piecewise-linearly.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// Front-end hit by the crowd, or `None` for a global surge.
    pub front_end: Option<usize>,
    /// First slot of the ramp.
    pub start: usize,
    /// Ramp-up length in slots.
    pub ramp: usize,
    /// Plateau length in slots at `peak_factor`.
    pub hold: usize,
    /// Decay length in slots back to baseline.
    pub decay: usize,
    /// Peak rate multiplier (≥ 1; the issue's regional spike is 10–100×).
    pub peak_factor: f64,
}

impl FlashCrowd {
    /// The rate multiplier in effect at `slot`.
    pub fn factor_at(&self, slot: usize) -> f64 {
        let peak = self.peak_factor;
        if slot < self.start {
            return 1.0;
        }
        let t = slot - self.start;
        if t < self.ramp {
            return 1.0 + (peak - 1.0) * (t + 1) as f64 / self.ramp as f64;
        }
        let t = t - self.ramp;
        if t < self.hold {
            return peak;
        }
        let t = t - self.hold;
        if t < self.decay {
            return peak - (peak - 1.0) * (t + 1) as f64 / self.decay as f64;
        }
        1.0
    }
}

impl Perturbation for FlashCrowd {
    fn name(&self) -> &'static str {
        "flash_crowd"
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        check_factor("peak_factor", self.peak_factor, 1.0)
    }

    fn apply_rates(&self, grid: &mut RateGrid, _seed: u64) {
        for (t, slot) in grid.iter_mut().enumerate() {
            let f = self.factor_at(t);
            for (s, row) in slot.iter_mut().enumerate() {
                if self.front_end.is_none_or(|fe| fe == s) {
                    for r in row.iter_mut() {
                        *r *= f;
                    }
                }
            }
        }
    }
}

/// A wholesale electricity price shock: one DC's (or every DC's) hourly
/// price is multiplied by `factor` for a window of slots.
#[derive(Debug, Clone)]
pub struct PriceShock {
    /// Data center hit by the shock, or `None` for all.
    pub dc: Option<usize>,
    /// First slot of the shock window.
    pub start: usize,
    /// Window length in slots.
    pub duration: usize,
    /// Price multiplier during the window.
    pub factor: f64,
}

impl Perturbation for PriceShock {
    fn name(&self) -> &'static str {
        "price_shock"
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        check_factor("factor", self.factor, 0.0)
    }

    fn apply_prices(&self, dc: usize, _num_dcs: usize, feed: &mut [f64], _seed: u64) {
        if self.dc.is_none_or(|d| d == dc) {
            let len = feed.len();
            let end = self.start.saturating_add(self.duration).min(len);
            for p in feed.iter_mut().take(end).skip(self.start.min(len)) {
                *p *= self.factor;
            }
        }
    }
}

/// Price-correlated load oscillation: prices gyrate on a triangle wave with
/// even- and odd-indexed DCs in anti-phase (a market where regions see
/// opposite price swings), while total load swings against the average
/// price (demand chasing cheap power). This is the scenario the damping
/// variant of `ResilientPolicy` exists for.
#[derive(Debug, Clone)]
pub struct PriceLoadOscillation {
    /// First oscillating slot.
    pub start: usize,
    /// Number of oscillating slots.
    pub duration: usize,
    /// Oscillation period in slots.
    pub period: usize,
    /// Relative price swing amplitude in [0, 1).
    pub price_amplitude: f64,
    /// Relative load swing amplitude in [0, 1).
    pub load_amplitude: f64,
}

impl PriceLoadOscillation {
    fn phase(&self, slot: usize) -> Option<f64> {
        let end = self.start.saturating_add(self.duration);
        if slot < self.start || slot >= end || self.period == 0 {
            return None;
        }
        Some((slot - self.start) as f64 / self.period as f64)
    }
}

impl Perturbation for PriceLoadOscillation {
    fn name(&self) -> &'static str {
        "price_load_oscillation"
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        if self.period == 0 {
            return Err(FaultConfigError {
                field: "period",
                value: 0.0,
                reason: "must be at least one slot",
            });
        }
        for (field, value) in [
            ("price_amplitude", self.price_amplitude),
            ("load_amplitude", self.load_amplitude),
        ] {
            if !(value.is_finite() && (0.0..1.0).contains(&value)) {
                return Err(FaultConfigError {
                    field,
                    value,
                    reason: "must lie in [0, 1)",
                });
            }
        }
        Ok(())
    }

    fn apply_rates(&self, grid: &mut RateGrid, _seed: u64) {
        for (t, slot) in grid.iter_mut().enumerate() {
            if let Some(phase) = self.phase(t) {
                // Load swings against the even-DC price phase: when cheap
                // regions get cheaper, demand surges toward them.
                let f = 1.0 - self.load_amplitude * triangle(phase);
                for row in slot.iter_mut() {
                    for r in row.iter_mut() {
                        *r *= f;
                    }
                }
            }
        }
    }

    fn apply_prices(&self, dc: usize, _num_dcs: usize, feed: &mut [f64], _seed: u64) {
        // Odd-indexed DCs oscillate in anti-phase with even-indexed ones.
        let offset = if dc % 2 == 0 { 0.0 } else { 0.5 };
        for (t, p) in feed.iter_mut().enumerate() {
            if let Some(phase) = self.phase(t) {
                *p *= 1.0 + self.price_amplitude * triangle(phase + offset);
            }
        }
    }
}

/// A data-center outage: the DC's server count collapses to
/// `surviving_fraction` of nominal for a window of slots (never below one
/// server — the §III model needs every DC addressable).
#[derive(Debug, Clone)]
pub struct DcOutage {
    /// Data-center index.
    pub dc: usize,
    /// First slot of the outage.
    pub start: usize,
    /// Outage length in slots.
    pub duration: usize,
    /// Fraction of servers that stay up, in (0, 1].
    pub surviving_fraction: f64,
}

impl Perturbation for DcOutage {
    fn name(&self) -> &'static str {
        "dc_outage"
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        if !(self.surviving_fraction.is_finite()
            && self.surviving_fraction > 0.0
            && self.surviving_fraction <= 1.0)
        {
            return Err(FaultConfigError {
                field: "surviving_fraction",
                value: self.surviving_fraction,
                reason: "must lie in (0, 1]",
            });
        }
        Ok(())
    }

    fn system_effects(&self, slots: usize, _num_dcs: usize, out: &mut Vec<SlotEffect>) {
        let end = self.start.saturating_add(self.duration).min(slots);
        for slot in self.start.min(slots)..end {
            out.push(SlotEffect::ServerFactor {
                slot,
                dc: self.dc,
                factor: self.surviving_fraction,
            });
        }
    }
}

/// A transfer-cost spike (network partition / congested backbone): the
/// front-end → DC distances, and hence Eq. 4's transfer costs, are
/// multiplied by `factor` for a window of slots.
#[derive(Debug, Clone)]
pub struct TransferCostSpike {
    /// Data center whose links degrade, or `None` for all.
    pub dc: Option<usize>,
    /// First slot of the spike.
    pub start: usize,
    /// Spike length in slots.
    pub duration: usize,
    /// Distance multiplier during the window.
    pub factor: f64,
}

impl Perturbation for TransferCostSpike {
    fn name(&self) -> &'static str {
        "transfer_cost_spike"
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        check_factor("factor", self.factor, 0.0)
    }

    fn system_effects(&self, slots: usize, _num_dcs: usize, out: &mut Vec<SlotEffect>) {
        let end = self.start.saturating_add(self.duration).min(slots);
        for slot in self.start.min(slots)..end {
            out.push(SlotEffect::TransferFactor {
                slot,
                dc: self.dc,
                factor: self.factor,
            });
        }
    }
}

/// A slow-drift misforecast: real arrivals grow (or shrink) linearly
/// relative to the planning trace, by `per_slot` per slot — the forecast
/// that was right at slot 0 is off by `per_slot × t` at slot `t`.
#[derive(Debug, Clone)]
pub struct SlowDrift {
    /// Relative drift per slot (0.04 → 4% further off each slot).
    pub per_slot: f64,
}

impl Perturbation for SlowDrift {
    fn name(&self) -> &'static str {
        "slow_drift"
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        if !self.per_slot.is_finite() {
            return Err(FaultConfigError {
                field: "per_slot",
                value: self.per_slot,
                reason: "must be finite",
            });
        }
        Ok(())
    }

    fn apply_rates(&self, grid: &mut RateGrid, _seed: u64) {
        for (t, slot) in grid.iter_mut().enumerate() {
            let f = (1.0 + self.per_slot * t as f64).max(0.0);
            for row in slot.iter_mut() {
                for r in row.iter_mut() {
                    *r *= f;
                }
            }
        }
    }
}

/// Rate-telemetry faults as a stackable perturbation (NaN bursts, negative
/// glitches, spikes). The effective hash seed combines the config's seed
/// with the stack seed, so the same fault pattern composes deterministically
/// inside any scenario.
#[derive(Debug, Clone)]
pub struct RateFaults(pub RateFaultConfig);

impl Perturbation for RateFaults {
    fn name(&self) -> &'static str {
        "rate_faults"
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        self.0.validate()
    }

    fn apply_rates(&self, grid: &mut RateGrid, seed: u64) {
        let cfg = &self.0;
        let eff = mix(cfg.seed ^ seed);
        for (t, slot) in grid.iter_mut().enumerate() {
            for (s, row) in slot.iter_mut().enumerate() {
                let burst = u01(eff, 1, t as u64, s as u64) < cfg.nan_burst_prob;
                for (k, r) in row.iter_mut().enumerate() {
                    let coord = ((t as u64) << 32) | ((s as u64) << 16) | k as u64;
                    if burst {
                        *r = f64::NAN;
                    } else if u01(eff, 2, coord, 0) < cfg.negative_prob {
                        *r = -*r - 1.0;
                    } else if u01(eff, 3, coord, 0) < cfg.spike_prob {
                        *r *= cfg.spike_factor;
                    }
                }
            }
        }
    }
}

/// Price-feed faults (dropout + shock window) as a stackable perturbation.
/// Each DC's feed draws from its own salted stream.
#[derive(Debug, Clone)]
pub struct PriceFaults(pub PriceFaultConfig);

impl Perturbation for PriceFaults {
    fn name(&self) -> &'static str {
        "price_faults"
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        self.0.validate()
    }

    fn apply_prices(&self, dc: usize, _num_dcs: usize, feed: &mut [f64], seed: u64) {
        let mut cfg = self.0.clone();
        cfg.seed = mix(cfg.seed ^ seed ^ ((dc as u64) << 8));
        // Validation happened at the scenario boundary; a no-op on error.
        let _ = corrupt_price_feed(feed, &cfg);
    }
}

/// A windowed solver outage: every solve attempt fails with probability
/// `prob` during the window (the chaos layer injects the failures).
#[derive(Debug, Clone)]
pub struct SolverOutage {
    /// Per-attempt failure probability during the window.
    pub prob: f64,
    /// First affected slot.
    pub start: usize,
    /// Window length in slots.
    pub duration: usize,
}

impl Perturbation for SolverOutage {
    fn name(&self) -> &'static str {
        "solver_outage"
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        if !(self.prob.is_finite() && (0.0..=1.0).contains(&self.prob)) {
            return Err(FaultConfigError {
                field: "prob",
                value: self.prob,
                reason: "must be a probability in [0, 1]",
            });
        }
        Ok(())
    }

    fn solver_fail_prob(&self, slot: usize) -> f64 {
        let end = self.start.saturating_add(self.duration);
        if slot >= self.start && slot < end {
            self.prob
        } else {
            0.0
        }
    }
}

/// A named, ordered stack of perturbations plus a grid-coupling strength.
///
/// `grid_kappa` prices plan churn: the scorecard subtracts
/// `kappa × Σ_t Σ_l price_l(t) × |E_l(t) − E_l(t−1)|` from profit, where
/// `E_l(t)` is DC `l`'s energy draw in slot `t` — the demand-charge /
/// grid-stability surcharge motivated by "When Market Prices Drive the
/// Load" (PAPERS.md). `kappa = 0` scores raw profit.
#[derive(Debug)]
pub struct Scenario {
    name: String,
    description: String,
    perturbations: Vec<Box<dyn Perturbation>>,
    grid_kappa: f64,
}

impl Scenario {
    /// Starts an empty scenario with `grid_kappa = 0`.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            description: description.into(),
            perturbations: Vec::new(),
            grid_kappa: 0.0,
        }
    }

    /// Appends a perturbation to the stack (applied in push order).
    pub fn push(mut self, p: Box<dyn Perturbation>) -> Self {
        self.perturbations.push(p);
        self
    }

    /// Sets the grid-coupling strength used by the scorecard.
    pub fn with_kappa(mut self, kappa: f64) -> Self {
        self.grid_kappa = kappa;
        self
    }

    /// Scenario name (the `--scenario` selector).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line human description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Grid-coupling strength for the ramping surcharge.
    pub fn grid_kappa(&self) -> f64 {
        self.grid_kappa
    }

    /// The perturbation stack, in application order.
    pub fn perturbations(&self) -> &[Box<dyn Perturbation>] {
        &self.perturbations
    }

    /// Validates every perturbation plus the coupling strength.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if !(self.grid_kappa.is_finite() && self.grid_kappa >= 0.0) {
            return Err(FaultConfigError {
                field: "grid_kappa",
                value: self.grid_kappa,
                reason: "must be finite and non-negative",
            });
        }
        for p in &self.perturbations {
            p.validate()?;
        }
        Ok(())
    }

    /// The hash-stream seed perturbation `idx` derives from stack seed
    /// `seed`: position-salted so reordering a stack changes every stream.
    fn sub_seed(seed: u64, idx: usize) -> u64 {
        mix(seed ^ mix(idx as u64 + 1))
    }

    /// Applies the stack's rate perturbations, returning the perturbed
    /// trace (shape-checked only — telemetry faults may inject NaN).
    // palb:decision-path
    pub fn perturb_trace(&self, trace: &Trace, seed: u64) -> Trace {
        let mut grid: RateGrid = trace.clone().into();
        for (i, p) in self.perturbations.iter().enumerate() {
            p.apply_rates(&mut grid, Self::sub_seed(seed, i));
        }
        Trace::new_unchecked(grid)
    }

    /// Applies the stack's price perturbations to one DC's hourly feed in
    /// place.
    // palb:decision-path
    pub fn perturb_price_feed(&self, dc: usize, num_dcs: usize, feed: &mut [f64], seed: u64) {
        for (i, p) in self.perturbations.iter().enumerate() {
            p.apply_prices(dc, num_dcs, feed, Self::sub_seed(seed, i));
        }
    }

    /// Collects the stack's per-slot system effects over a horizon.
    // palb:decision-path
    pub fn system_effects(&self, slots: usize, num_dcs: usize) -> Vec<SlotEffect> {
        let mut out = Vec::new();
        for p in &self.perturbations {
            p.system_effects(slots, num_dcs, &mut out);
        }
        out
    }

    /// Per-slot solver-failure probabilities over a horizon, combining
    /// stacked outages as independent events: `1 − Π (1 − pᵢ)`.
    // palb:decision-path
    pub fn solver_fault_probs(&self, slots: usize) -> Vec<f64> {
        (0..slots)
            .map(|t| {
                let survive: f64 = self
                    .perturbations
                    .iter()
                    .map(|p| 1.0 - p.solver_fail_prob(t).clamp(0.0, 1.0))
                    .product();
                1.0 - survive
            })
            .collect()
    }

    /// Whether any slot in the horizon can see an injected solver failure.
    pub fn has_solver_faults(&self, slots: usize) -> bool {
        self.solver_fault_probs(slots).iter().any(|&p| p > 0.0)
    }
}

/// The built-in scenario library, in scorecard order. All scenarios are
/// sized for the §VI day (24 slots, 4 front-ends, 3 DCs) but degrade
/// gracefully on other shapes (windows clamp to the horizon).
pub fn builtin() -> Vec<Scenario> {
    vec![
        Scenario::new(
            "flash_crowd",
            "30x regional spike on front-end 2 over the evening peak (2-slot ramp, 3-slot hold, 2-slot decay)",
        )
        .push(Box::new(FlashCrowd {
            front_end: Some(2),
            start: 17,
            ramp: 2,
            hold: 3,
            decay: 2,
            peak_factor: 30.0,
        })),
        Scenario::new(
            "price_shock",
            "8x wholesale price shock at DC 0 for slots 14-17",
        )
        .push(Box::new(PriceShock {
            dc: Some(0),
            start: 14,
            duration: 4,
            factor: 8.0,
        })),
        Scenario::new(
            "price_oscillation",
            "anti-phase price gyration (60% amplitude, period 6) with mild demand chasing; grid-coupled scoring",
        )
        .push(Box::new(PriceLoadOscillation {
            start: 4,
            duration: 18,
            period: 6,
            price_amplitude: 0.6,
            load_amplitude: 0.05,
        }))
        .with_kappa(1.0),
        Scenario::new(
            "dc_outage",
            "DC 0 collapses to 20% of its servers for slots 10-15",
        )
        .push(Box::new(DcOutage {
            dc: 0,
            start: 10,
            duration: 6,
            surviving_fraction: 0.2,
        })),
        Scenario::new(
            "transfer_spike",
            "25x transfer-cost spike on every link into DC 1 for slots 8-15 (backbone congestion)",
        )
        .push(Box::new(TransferCostSpike {
            dc: Some(1),
            start: 8,
            duration: 8,
            factor: 25.0,
        })),
        Scenario::new(
            "slow_drift",
            "misforecast drifting 4% further per slot (arrivals reach ~1.9x plan by end of day)",
        )
        .push(Box::new(SlowDrift { per_slot: 0.04 })),
        Scenario::new(
            "telemetry_chaos",
            "10% NaN bursts + 2% negative glitches on rates, 10% price-feed dropout, 15% solver failures all day",
        )
        .push(Box::new(RateFaults(RateFaultConfig {
            seed: 0,
            nan_burst_prob: 0.1,
            negative_prob: 0.02,
            spike_prob: 0.01,
            spike_factor: 1e6,
        })))
        .push(Box::new(PriceFaults(PriceFaultConfig::dropout(0.1, 0))))
        .push(Box::new(SolverOutage {
            prob: 0.15,
            start: 0,
            duration: 24,
        })),
        Scenario::new(
            "black_swan",
            "evening flash crowd + DC 0 outage + DC 1 price shock + rate faults + 25% solver failures, stacked",
        )
        .push(Box::new(FlashCrowd {
            front_end: Some(2),
            start: 17,
            ramp: 2,
            hold: 3,
            decay: 2,
            peak_factor: 20.0,
        }))
        .push(Box::new(DcOutage {
            dc: 0,
            start: 16,
            duration: 6,
            surviving_fraction: 0.2,
        }))
        .push(Box::new(PriceShock {
            dc: Some(1),
            start: 15,
            duration: 5,
            factor: 6.0,
        }))
        .push(Box::new(RateFaults(RateFaultConfig {
            seed: 0,
            nan_burst_prob: 0.05,
            negative_prob: 0.01,
            spike_prob: 0.01,
            spike_factor: 1e6,
        })))
        .push(Box::new(SolverOutage {
            prob: 0.25,
            start: 15,
            duration: 6,
        })),
    ]
}

/// Looks up a built-in scenario by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    builtin().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::constant_trace;

    fn base() -> Trace {
        constant_trace(vec![vec![100.0; 3]; 4], 24)
    }

    fn bits(tr: &Trace) -> Vec<u64> {
        (0..tr.slots())
            .flat_map(|t| {
                (0..tr.front_ends()).flat_map(move |s| (0..tr.classes()).map(move |k| (t, s, k)))
            })
            .map(|(t, s, k)| tr.rate(t, s, k).to_bits())
            .collect()
    }

    #[test]
    fn all_builtin_scenarios_validate_and_have_unique_names() {
        let lib = builtin();
        assert!(lib.len() >= 6, "need at least six scenarios");
        let mut names: Vec<&str> = lib.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), lib.len(), "duplicate scenario names");
        for sc in &lib {
            sc.validate().unwrap();
            assert!(!sc.description().is_empty());
        }
        assert!(by_name("flash_crowd").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn flash_crowd_shape_hits_peak_and_returns_to_baseline() {
        let sc = by_name("flash_crowd").unwrap();
        let tr = sc.perturb_trace(&base(), 42);
        // Untouched front-ends and pre-window slots stay identical.
        assert_eq!(tr.rate(5, 2, 0), 100.0);
        assert_eq!(tr.rate(18, 0, 0), 100.0);
        // Hold slots sit exactly at peak_factor x base.
        for t in 19..22 {
            assert_eq!(tr.rate(t, 2, 1), 3000.0, "hold slot {t}");
        }
        // Ramp is monotone increasing, decay monotone decreasing.
        assert!(tr.rate(17, 2, 0) > 100.0 && tr.rate(17, 2, 0) < tr.rate(18, 2, 0));
        assert!(tr.rate(22, 2, 0) > tr.rate(23, 2, 0));
        // Last decay slot lands back on baseline.
        assert!((tr.rate(23, 2, 0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn price_shock_multiplies_only_the_window_of_the_target_dc() {
        let sc = by_name("price_shock").unwrap();
        let mut feed0 = vec![0.04; 24];
        let mut feed1 = vec![0.04; 24];
        sc.perturb_price_feed(0, 3, &mut feed0, 42);
        sc.perturb_price_feed(1, 3, &mut feed1, 42);
        for (t, &p) in feed0.iter().enumerate() {
            let expect = if (14..18).contains(&t) { 0.32 } else { 0.04 };
            assert!((p - expect).abs() < 1e-12, "dc0 slot {t}: {p}");
        }
        assert!(feed1.iter().all(|&p| (p - 0.04).abs() < 1e-12));
    }

    #[test]
    fn oscillation_is_antiphase_and_bounded() {
        let sc = by_name("price_oscillation").unwrap();
        let mut even = vec![1.0; 24];
        let mut odd = vec![1.0; 24];
        sc.perturb_price_feed(0, 3, &mut even, 42);
        sc.perturb_price_feed(1, 3, &mut odd, 42);
        let mut moved = false;
        for t in 4..22 {
            assert!((0.4..=1.6).contains(&even[t]), "even amplitude at {t}");
            assert!((0.4..=1.6).contains(&odd[t]), "odd amplitude at {t}");
            // Anti-phase: deviations from 1 have opposite signs (or both 0).
            let de = even[t] - 1.0;
            let dq = odd[t] - 1.0;
            assert!(de * dq <= 1e-12, "same-phase swing at {t}: {de} vs {dq}");
            if de.abs() > 0.2 {
                moved = true;
            }
        }
        assert!(moved, "oscillation never moved prices");
        // Outside the window: untouched.
        assert!((even[0] - 1.0).abs() < 1e-12 && (even[23] - 1.0).abs() < 1e-12);
        // Load swings against the even-DC price phase.
        let tr = sc.perturb_trace(&base(), 42);
        let mut seen_opposite = false;
        for t in 4..22 {
            let load_dev = tr.rate(t, 0, 0) - 100.0;
            let price_dev = even[t] - 1.0;
            if load_dev.abs() > 1.0 && price_dev.abs() > 0.05 {
                assert!(load_dev * price_dev < 0.0, "load follows price at {t}");
                seen_opposite = true;
            }
        }
        assert!(seen_opposite);
    }

    #[test]
    fn outage_and_transfer_windows_produce_exactly_their_effects() {
        let sc = by_name("dc_outage").unwrap();
        let fx = sc.system_effects(24, 3);
        assert_eq!(fx.len(), 6);
        for (i, e) in fx.iter().enumerate() {
            match e {
                SlotEffect::ServerFactor { slot, dc, factor } => {
                    assert_eq!(*slot, 10 + i);
                    assert_eq!(*dc, 0);
                    assert!((factor - 0.2).abs() < 1e-12);
                }
                other => panic!("unexpected effect {other:?}"),
            }
        }
        let sc = by_name("transfer_spike").unwrap();
        let fx = sc.system_effects(24, 3);
        assert_eq!(fx.len(), 8);
        assert!(fx.iter().all(|e| matches!(
            e,
            SlotEffect::TransferFactor { dc: Some(1), slot, .. } if (8..16).contains(slot)
        )));
        // Windows clamp to a short horizon.
        assert_eq!(sc.system_effects(10, 3).len(), 2);
    }

    #[test]
    fn slow_drift_slope_is_linear_in_slot() {
        let sc = by_name("slow_drift").unwrap();
        let tr = sc.perturb_trace(&base(), 42);
        for t in 0..24 {
            let expect = 100.0 * (1.0 + 0.04 * t as f64);
            assert!(
                (tr.rate(t, 1, 2) - expect).abs() < 1e-9,
                "slot {t}: {} vs {expect}",
                tr.rate(t, 1, 2)
            );
        }
    }

    #[test]
    fn solver_fault_probs_window_and_compose() {
        let sc = by_name("telemetry_chaos").unwrap();
        let probs = sc.solver_fault_probs(24);
        assert!(probs.iter().all(|&p| (p - 0.15).abs() < 1e-12));
        let sc = by_name("black_swan").unwrap();
        let probs = sc.solver_fault_probs(24);
        for (t, &p) in probs.iter().enumerate() {
            let expect = if (15..21).contains(&t) { 0.25 } else { 0.0 };
            assert!((p - expect).abs() < 1e-12, "slot {t}: {p}");
        }
        assert!(sc.has_solver_faults(24));
        assert!(!by_name("flash_crowd").unwrap().has_solver_faults(24));
        // Two stacked outages over the same window compose as independent
        // events.
        let sc = Scenario::new("x", "")
            .push(Box::new(SolverOutage {
                prob: 0.5,
                start: 0,
                duration: 4,
            }))
            .push(Box::new(SolverOutage {
                prob: 0.5,
                start: 2,
                duration: 4,
            }));
        let probs = sc.solver_fault_probs(6);
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[2] - 0.75).abs() < 1e-12);
        assert!((probs[5] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_seed_is_bitwise_reproducible_and_seeds_differ() {
        for sc in builtin() {
            let a = sc.perturb_trace(&base(), 42);
            let b = sc.perturb_trace(&base(), 42);
            assert_eq!(bits(&a), bits(&b), "{} trace not reproducible", sc.name());
            let mut f1 = vec![0.05; 24];
            let mut f2 = vec![0.05; 24];
            sc.perturb_price_feed(0, 3, &mut f1, 42);
            sc.perturb_price_feed(0, 3, &mut f2, 42);
            let fb = |f: &[f64]| f.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
            assert_eq!(fb(&f1), fb(&f2), "{} feed not reproducible", sc.name());
            assert_eq!(
                sc.system_effects(24, 3),
                sc.system_effects(24, 3),
                "{} effects not reproducible",
                sc.name()
            );
        }
        // Seed changes move the stochastic scenarios.
        let sc = by_name("telemetry_chaos").unwrap();
        let a = sc.perturb_trace(&base(), 42);
        let c = sc.perturb_trace(&base(), 43);
        assert_ne!(bits(&a), bits(&c));
    }

    #[test]
    fn stack_order_matters_for_seed_derivation() {
        // The same two perturbations in different order produce different
        // fault patterns (position-salted sub-seeds).
        let faults = || {
            Box::new(RateFaults(RateFaultConfig {
                seed: 0,
                nan_burst_prob: 0.3,
                negative_prob: 0.0,
                spike_prob: 0.0,
                spike_factor: 1.0,
            }))
        };
        let noop = || Box::new(SlowDrift { per_slot: 0.0 });
        let a = Scenario::new("a", "").push(noop()).push(faults());
        let b = Scenario::new("b", "").push(faults()).push(noop());
        let ta = a.perturb_trace(&base(), 7);
        let tb = b.perturb_trace(&base(), 7);
        assert_ne!(bits(&ta), bits(&tb));
    }

    #[test]
    fn invalid_stacks_are_rejected_at_the_boundary() {
        let sc = Scenario::new("bad", "").push(Box::new(FlashCrowd {
            front_end: None,
            start: 0,
            ramp: 1,
            hold: 1,
            decay: 1,
            peak_factor: 0.5,
        }));
        assert_eq!(sc.validate().unwrap_err().field, "peak_factor");
        let sc = Scenario::new("bad", "").with_kappa(f64::NAN);
        assert_eq!(sc.validate().unwrap_err().field, "grid_kappa");
        let sc = Scenario::new("bad", "").push(Box::new(PriceLoadOscillation {
            start: 0,
            duration: 4,
            period: 0,
            price_amplitude: 0.5,
            load_amplitude: 0.1,
        }));
        assert_eq!(sc.validate().unwrap_err().field, "period");
    }
}
