//! Poisson utilities bridging rate-level traces and request-level
//! simulation: sampling per-slot request counts and splitting (thinning)
//! a stream according to dispatch fractions.

use palb_num::is_zero;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Poisson};

/// Samples the number of arrivals in a slot of length `slot_length` from a
/// Poisson process with rate `rate` (per time unit). Deterministic per seed.
pub fn sample_count(rate: f64, slot_length: f64, seed: u64) -> u64 {
    assert!(rate >= 0.0 && slot_length > 0.0);
    let mean = rate * slot_length;
    if is_zero(mean) {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // palb:allow(unwrap): mean is finite and nonzero here
    Poisson::new(mean).expect("positive mean").sample(&mut rng) as u64
}

/// Splits a Poisson stream of rate `rate` into sub-streams proportional to
/// `weights` (Poisson thinning): the results are independent Poisson rates
/// summing to `rate` (after weight normalization).
///
/// Zero-total weights return all-zero rates.
pub fn thin_rates(rate: f64, weights: &[f64]) -> Vec<f64> {
    assert!(rate >= 0.0);
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return vec![0.0; weights.len()];
    }
    weights.iter().map(|w| rate * w / total).collect()
}

/// Samples interarrival times of a Poisson process until `horizon`,
/// returning absolute arrival times. Deterministic per seed.
pub fn arrival_times(rate: f64, horizon: f64, seed: u64) -> Vec<f64> {
    assert!(rate >= 0.0 && horizon > 0.0);
    if is_zero(rate) {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let mut out = Vec::with_capacity((rate * horizon * 1.2) as usize + 4);
    loop {
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rng.gen_range(0.0_f64..1.0);
        t += -(1.0 - u).ln() / rate;
        if t > horizon {
            break;
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_mean_tracks_rate() {
        // Average over seeds ≈ rate · T.
        let mean: f64 = (0..200)
            .map(|s| sample_count(50.0, 2.0, s) as f64)
            .sum::<f64>()
            / 200.0;
        assert!((mean - 100.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn zero_rate_zero_count() {
        assert_eq!(sample_count(0.0, 5.0, 1), 0);
        assert!(arrival_times(0.0, 10.0, 1).is_empty());
    }

    #[test]
    fn thinning_preserves_total() {
        let parts = thin_rates(30.0, &[1.0, 2.0, 3.0]);
        assert!((parts.iter().sum::<f64>() - 30.0).abs() < 1e-12);
        assert!((parts[2] - 15.0).abs() < 1e-12);
    }

    #[test]
    fn thinning_zero_weights() {
        assert_eq!(thin_rates(10.0, &[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let at = arrival_times(20.0, 10.0, 42);
        assert!(!at.is_empty());
        assert!(at.windows(2).all(|w| w[0] < w[1]));
        assert!(*at.last().unwrap() <= 10.0);
        // Count close to rate · horizon.
        assert!((at.len() as f64 - 200.0).abs() < 60.0);
    }

    #[test]
    fn arrivals_deterministic_per_seed() {
        assert_eq!(arrival_times(5.0, 20.0, 7), arrival_times(5.0, 20.0, 7));
        assert_ne!(arrival_times(5.0, 20.0, 7), arrival_times(5.0, 20.0, 8));
    }
}
