// palb:lint-tier = lib
//! # palb-workload — workload substrates
//!
//! Trace generators standing in for the datasets the paper evaluates on:
//!
//! * [`synthetic`] — the §V constant arrival sets (Table II),
//! * [`diurnal`] — World-Cup-'98-like day curves for §VI (four day
//!   profiles for the four front-ends, per-class time shifts, log-normal
//!   noise),
//! * [`burst`] — Google-2010-cluster-like 7-hour bursty traces for §VII,
//! * [`poisson`] — Poisson sampling/thinning bridging rate-level traces to
//!   request-level simulation,
//! * [`fault`] — deterministic fault injectors (NaN bursts, spikes, price
//!   dropouts, forced solver failures) for the degraded-mode experiments,
//! * [`scenario`] — composable adversarial scenario stacks (flash crowds,
//!   price shocks, DC outages, black swans) built on the same
//!   counter-based hashing as [`fault`],
//! * [`replay`] — seed-pure request-level replay of a slot's rate matrix
//!   ([`ReplayStream`], alias-method cell sampling) feeding the live
//!   serving layer,
//! * [`Trace`] — the `slots × front-ends × classes` rate container all
//!   generators produce and the optimizer consumes.
//!
//! The substitution is behaviour-preserving because the paper's controller
//! only ever reads *average per-slot arrival rates* (§III); no component
//! touches individual log records.
//!
//! ```
//! use palb_workload::diurnal::{generate, DiurnalConfig};
//!
//! let trace = generate(&DiurnalConfig::default());
//! assert_eq!(trace.slots(), 24);
//! assert_eq!(trace.front_ends(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod burst;
pub mod diurnal;
pub mod fault;
pub mod forecast;
pub mod poisson;
pub mod replay;
pub mod scenario;
pub mod synthetic;
mod trace;

pub use replay::ReplayStream;
pub use trace::Trace;
