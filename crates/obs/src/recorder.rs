//! The [`Recorder`] handle instrumented code holds, and the hierarchical
//! [`Span`] timer. A recorder is either attached to a [`Registry`] or a
//! no-op; the no-op path is a single `Option` branch — no clock read, no
//! allocation, no atomic — so hot loops can be instrumented
//! unconditionally.

use std::time::Instant;

use crate::metrics::duration_bounds;
use crate::registry::Registry;
use crate::sync::Arc;

/// Histogram family every [`Span`] records its elapsed seconds into,
/// labelled `span="<path>"`.
pub const SPAN_SECONDS: &str = "palb_span_seconds";
/// Counter family bumped once per completed span, labelled
/// `span="<path>"`.
pub const SPAN_TOTAL: &str = "palb_span_total";

/// A cheap, cloneable handle for recording metrics. Either attached to a
/// shared [`Registry`] or a no-op ([`Recorder::noop`]).
#[derive(Clone, Default)]
pub struct Recorder {
    registry: Option<Arc<Registry>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("attached", &self.registry.is_some())
            .finish()
    }
}

impl Recorder {
    /// A recorder that drops everything. Every method is one branch.
    pub fn noop() -> Self {
        Recorder { registry: None }
    }

    /// A recorder feeding the given registry.
    pub fn attached(registry: Arc<Registry>) -> Self {
        Recorder {
            registry: Some(registry),
        }
    }

    /// True when attached to a registry. Use to gate work that is only
    /// needed for recording (e.g. reading the clock for a latency
    /// measurement).
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The underlying registry, if attached.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Adds `delta` to the counter `name{labels}`.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if let Some(reg) = &self.registry {
            reg.counter(name, labels).add(delta);
        }
    }

    /// Sets the gauge `name{labels}`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if let Some(reg) = &self.registry {
            reg.gauge(name, labels).set(value);
        }
    }

    /// Adds `delta` to the gauge `name{labels}`.
    pub fn gauge_add(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        if let Some(reg) = &self.registry {
            reg.gauge(name, labels).add(delta);
        }
    }

    /// Observes `value` into the histogram `name{labels}`, registering it
    /// with the default duration buckets
    /// ([`crate::metrics::duration_bounds`]) on first use.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if let Some(reg) = &self.registry {
            reg.histogram(name, labels, &duration_bounds())
                .observe(value);
        }
    }

    /// Observes `value` into the histogram `name{labels}` with explicit
    /// bucket bounds (applied on first registration only).
    pub fn observe_with_bounds(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        if let Some(reg) = &self.registry {
            reg.histogram(name, labels, bounds).observe(value);
        }
    }

    /// Starts a timing span at `path` (e.g. `"run/slot"`). The span
    /// records [`SPAN_SECONDS`] and [`SPAN_TOTAL`] when dropped; on a
    /// no-op recorder it is inert and reads no clock.
    pub fn span(&self, path: &str) -> Span {
        Span {
            inner: self.registry.as_ref().map(|reg| SpanInner {
                registry: Arc::clone(reg),
                path: path.to_string(),
                start: Instant::now(),
            }),
        }
    }
}

struct SpanInner {
    registry: Arc<Registry>,
    path: String,
    start: Instant,
}

/// A hierarchical wall-clock timer (see [`Recorder::span`]). Dropping the
/// span records its elapsed seconds into
/// `palb_span_seconds{span="<path>"}` and bumps
/// `palb_span_total{span="<path>"}`.
#[derive(Default)]
pub struct Span {
    inner: Option<SpanInner>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("path", &self.inner.as_ref().map(|i| i.path.as_str()))
            .finish()
    }
}

impl Span {
    /// A child span with `name` appended to this span's path
    /// (`"run" -> "run/slot"`). Inert if the parent is inert.
    pub fn child(&self, name: &str) -> Span {
        Span {
            inner: self.inner.as_ref().map(|i| SpanInner {
                registry: Arc::clone(&i.registry),
                path: format!("{}/{}", i.path, name),
                start: Instant::now(),
            }),
        }
    }

    /// True when this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.start.elapsed().as_secs_f64();
            let labels = [("span", inner.path.as_str())];
            inner
                .registry
                .histogram(SPAN_SECONDS, &labels, &duration_bounds())
                .observe(elapsed);
            inner.registry.counter(SPAN_TOTAL, &labels).inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_records_nothing_and_spans_are_inert() {
        let rec = Recorder::noop();
        assert!(!rec.is_enabled());
        rec.counter_add("palb_x_total", &[], 1);
        rec.gauge_set("palb_y", &[], 1.0);
        rec.observe("palb_z_seconds", &[], 0.1);
        let span = rec.span("run");
        assert!(!span.is_recording());
        assert!(!span.child("slot").is_recording());
        drop(span);
        assert!(rec.registry().is_none());
    }

    #[test]
    fn attached_recorder_feeds_the_registry() {
        let registry = Arc::new(Registry::new());
        let rec = Recorder::attached(Arc::clone(&registry));
        assert!(rec.is_enabled());
        rec.counter_add("palb_slots_total", &[], 2);
        rec.gauge_set("palb_profit", &[("dc", "0")], 7.5);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("palb_slots_total", &[]), Some(2));
        assert!(snap.contains_family("palb_profit"));
    }

    #[test]
    fn span_nesting_builds_slash_paths_and_records_on_drop() {
        let registry = Arc::new(Registry::new());
        let rec = Recorder::attached(Arc::clone(&registry));
        {
            let run = rec.span("run");
            assert!(run.is_recording());
            {
                let slot = run.child("slot");
                let _node = slot.child("bb_node");
            }
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value(SPAN_TOTAL, &[("span", "run")]), Some(1));
        assert_eq!(
            snap.counter_value(SPAN_TOTAL, &[("span", "run/slot")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value(SPAN_TOTAL, &[("span", "run/slot/bb_node")]),
            Some(1)
        );
        assert!(snap.contains_family(SPAN_SECONDS));
    }

    #[test]
    fn per_worker_span_counts_merge_deterministically() {
        // Simulates the parallel B&B: N workers each record a fixed
        // number of bb_node spans; the merged counter total must equal
        // the sum regardless of interleaving.
        let registry = Arc::new(Registry::new());
        let rec = Recorder::attached(Arc::clone(&registry));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let _node = rec.span("run/slot/bb_node");
                    }
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value(SPAN_TOTAL, &[("span", "run/slot/bb_node")]),
            Some(100)
        );
    }
}
