//! Concurrency-primitive shim: `std::sync` types by default, [loom]'s
//! model-checked mirrors when the tree is built with `--cfg loom`.
//!
//! Every atomic, mutex and `Arc` in the palb hot paths (the registry's
//! get-or-create, the metric update atomics, the solver's shared
//! incumbent) is imported from this module rather than from `std`
//! directly. Normal builds re-export `std::sync` unchanged — zero cost,
//! identical semantics. A loom build (`RUSTFLAGS="--cfg loom"`) swaps in
//! `loom::sync`, whose types record every load/store/rmw so the model
//! checker can exhaustively enumerate thread interleavings (bounded
//! preemptions) and weak-memory reorderings of the protocol under test.
//!
//! The loom jobs run only the dedicated model tests
//! (`crates/obs/tests/loom_registry.rs`,
//! `crates/core/tests/loom_models.rs`); loom types abort when used
//! outside `loom::model`, so the regular test suite is not run under
//! this cfg.
//!
//! This module is also the confinement boundary for the f64-bits-in-an-
//! atomic trick (see [`crate::metrics::Gauge`] and
//! `palb_core::sync::IncumbentCell`): an `f64` is stored as its raw bits
//! in an [`AtomicU64`] and every transition is a CAS on those bits.
//! Invariant: only bit patterns produced by `f64::to_bits` of *finite*
//! values are published, so decoding with `f64::from_bits` and comparing
//! with plain `f64` ordering is total at every observation point.

#[cfg(loom)]
pub use loom::sync::{
    atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering},
    Arc, Mutex,
};

#[cfg(not(loom))]
pub use std::sync::{
    atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering},
    Arc, Mutex,
};
