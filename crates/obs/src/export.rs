//! Snapshot exporters: Prometheus text exposition format and a
//! line-oriented JSON log. Both walk the snapshot's (name, labels) order,
//! so output is deterministic for a given registry state.

use crate::registry::{Sample, SampleValue, Snapshot};

/// Escapes a Prometheus label value (`\` -> `\\`, `"` -> `\"`,
/// newline -> `\n`).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders `{k1="v1",k2="v2"}`, with `extra` appended last; empty string
/// when there are no labels at all.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Escapes a JSON string (quotes, backslashes, control characters).
fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            _ => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

fn sample_kind(sample: &Sample) -> &'static str {
    match sample.value {
        SampleValue::Counter(_) => "counter",
        SampleValue::Gauge(_) => "gauge",
        SampleValue::Histogram(_) => "histogram",
    }
}

impl Snapshot {
    /// Renders the snapshot in Prometheus text exposition format: one
    /// `# TYPE` line per family, histogram buckets emitted cumulatively
    /// with an `le="+Inf"` bucket plus `_sum` and `_count` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for sample in &self.samples {
            if last_family != Some(&*sample.name) {
                out.push_str(&format!("# TYPE {} {}\n", sample.name, sample_kind(sample)));
                last_family = Some(&*sample.name);
            }
            match &sample.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        sample.name,
                        label_block(&sample.labels, None)
                    ));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        sample.name,
                        label_block(&sample.labels, None)
                    ));
                }
                SampleValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (bound, count) in h.bounds.iter().zip(&h.counts) {
                        cumulative += count;
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            sample.name,
                            label_block(&sample.labels, Some(("le", &format!("{bound}"))))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        sample.name,
                        label_block(&sample.labels, Some(("le", "+Inf"))),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        sample.name,
                        label_block(&sample.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        sample.name,
                        label_block(&sample.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }

    /// Renders the snapshot as JSONL: one JSON object per sample per
    /// line, carrying `name`, `kind`, `labels`, and the value. Histograms
    /// emit non-cumulative `counts` with the overflow bucket as a
    /// separate `overflow` field (JSON has no `+Inf` literal).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for sample in &self.samples {
            let head = format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"labels\":{}",
                escape_json(&sample.name),
                sample_kind(sample),
                json_labels(&sample.labels)
            );
            match &sample.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("{head},\"value\":{v}}}\n"));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("{head},\"value\":{}}}\n", json_number(*v)));
                }
                SampleValue::Histogram(h) => {
                    let bounds: Vec<String> = h.bounds.iter().map(|b| json_number(*b)).collect();
                    let finite: Vec<String> = h.counts[..h.bounds.len()]
                        .iter()
                        .map(|c| c.to_string())
                        .collect();
                    let overflow = h.counts[h.bounds.len()];
                    out.push_str(&format!(
                        "{head},\"bounds\":[{}],\"counts\":[{}],\"overflow\":{overflow},\"sum\":{},\"count\":{}}}\n",
                        bounds.join(","),
                        finite.join(","),
                        json_number(h.sum),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

/// Renders an f64 as a JSON number; non-finite values (which JSON cannot
/// express) become `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn prometheus_golden_snapshot() {
        let reg = Registry::new();
        reg.counter("palb_slots_total", &[]).add(3);
        reg.gauge("palb_profit_dollars", &[("dc", "0")]).set(12.5);
        let h = reg.histogram("palb_slot_decide_seconds", &[], &[0.5, 1.0]);
        h.observe(0.25);
        h.observe(0.5);
        h.observe(4.0);

        let text = reg.snapshot().to_prometheus();
        let expected = "\
# TYPE palb_profit_dollars gauge
palb_profit_dollars{dc=\"0\"} 12.5
# TYPE palb_slot_decide_seconds histogram
palb_slot_decide_seconds_bucket{le=\"0.5\"} 2
palb_slot_decide_seconds_bucket{le=\"1\"} 2
palb_slot_decide_seconds_bucket{le=\"+Inf\"} 3
palb_slot_decide_seconds_sum 4.75
palb_slot_decide_seconds_count 3
# TYPE palb_slots_total counter
palb_slots_total 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_type_line_emitted_once_per_family() {
        let reg = Registry::new();
        reg.counter("palb_m_total", &[("dc", "0")]).inc();
        reg.counter("palb_m_total", &[("dc", "1")]).inc();
        let text = reg.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE palb_m_total").count(), 1);
        assert!(text.contains("palb_m_total{dc=\"0\"} 1"));
        assert!(text.contains("palb_m_total{dc=\"1\"} 1"));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("palb_x_total", &[("path", "a\\b\"c\nd")]).inc();
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("path=\"a\\\\b\\\"c\\nd\""));
    }

    #[test]
    fn jsonl_lines_are_valid_json_shapes() {
        let reg = Registry::new();
        reg.counter("palb_slots_total", &[]).add(2);
        reg.gauge("palb_profit", &[("dc", "0")]).set(1.5);
        let h = reg.histogram("palb_h_seconds", &[], &[0.5, 1.0]);
        h.observe(0.25);
        h.observe(9.0);

        let text = reg.snapshot().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        // Snapshot order is by name: palb_h_seconds, palb_profit,
        // palb_slots_total.
        assert_eq!(
            lines[1],
            "{\"name\":\"palb_profit\",\"kind\":\"gauge\",\"labels\":{\"dc\":\"0\"},\"value\":1.5}"
        );
        assert!(lines[2].contains("\"kind\":\"counter\""));
        assert!(lines[2].contains("\"value\":2"));
        // Histogram line: finite counts + separate overflow.
        assert!(lines[0].contains("\"bounds\":[0.5,1]"));
        assert!(lines[0].contains("\"counts\":[1,0]"));
        assert!(lines[0].contains("\"overflow\":1"));
        assert!(lines[0].contains("\"count\":2"));
    }

    #[test]
    fn jsonl_escapes_strings() {
        let reg = Registry::new();
        reg.counter("palb_x_total", &[("k", "a\"b\\c\nd")]).inc();
        let text = reg.snapshot().to_jsonl();
        assert!(text.contains("\"k\":\"a\\\"b\\\\c\\nd\""));
    }
}
