// palb:lint-tier = lib
//! # palb-obs — unified observability for the palb workspace
//!
//! One first-class telemetry substrate for every layer of the controller
//! stack (driver, resilient ladder, branch-and-bound, LP workspaces,
//! experiment harness, CLI), replacing the layer-private counters that
//! used to be hand-threaded through return values.
//!
//! Three pieces:
//!
//! * [`Registry`] — a metrics registry holding [`Counter`]s, [`Gauge`]s
//!   and [`Histogram`]s (fixed log-linear buckets). Registration takes a
//!   short mutex; every *update* afterwards is a single atomic operation
//!   on a shared handle, so hot loops pay no lock.
//! * [`Recorder`] — the handle instrumented code holds. It is either
//!   attached to a registry or a **no-op**: `Recorder::noop()` carries
//!   `None`, so every recording call reduces to one branch — no clock
//!   read, no allocation, no atomic — and the solver hot path is
//!   unaffected when observability is off.
//! * [`Span`] — hierarchical wall-clock timing
//!   (`run > slot > tier > bb_node > lp_solve`): a span records its
//!   elapsed seconds into the `palb_span_seconds{span="<path>"}`
//!   histogram (and bumps `palb_span_total`) on drop.
//!
//! Snapshots export two ways: Prometheus text exposition
//! ([`Snapshot::to_prometheus`]) and a line-oriented JSON log
//! ([`Snapshot::to_jsonl`]). Both are deterministic: samples are emitted
//! in registry (name, labels) order.
//!
//! Determinism note for parallel consumers: counters are commutative
//! integer adds, so per-worker merges (e.g. the parallel branch-and-bound
//! recording one `bb_node` span per node across worker threads) produce
//! the same totals at every thread count whenever the underlying node
//! counts agree. Timing histograms are wall-clock and therefore never
//! part of any bitwise contract.
//!
//! ```
//! use palb_obs::{Recorder, Registry};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let rec = Recorder::attached(registry.clone());
//! rec.counter_add("palb_slots_total", &[], 1);
//! {
//!     let _span = rec.span("run/slot");
//! } // drop records elapsed seconds
//! let snap = registry.snapshot();
//! assert!(snap.to_prometheus().contains("palb_slots_total 1"));
//!
//! // The no-op recorder accepts the same calls and does nothing.
//! let off = Recorder::noop();
//! off.counter_add("palb_slots_total", &[], 1);
//! assert!(!off.span("run").is_recording());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod sync;

pub use metrics::{log_linear_bounds, Counter, Gauge, Histogram};
pub use recorder::{Recorder, Span, SPAN_SECONDS, SPAN_TOTAL};
pub use registry::{HistogramSnapshot, Registry, Sample, SampleValue, Snapshot};
