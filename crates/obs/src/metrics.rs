//! The metric primitives: atomic counters, gauges, and fixed-bucket
//! histograms. All updates are lock-free single atomics; construction and
//! registration go through [`crate::Registry`].

use crate::sync::{AtomicU64, Ordering};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new() -> Self {
        Counter::default()
    }

    /// Adds `delta` to the counter.
    // palb:hot-path(no-alloc)
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An `f64` gauge (stored as raw bits in an atomic, updated by CAS).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    pub(crate) fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `value`.
    // palb:hot-path(no-alloc)
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (compare-and-swap loop, so concurrent adds all land).
    // palb:hot-path(no-alloc)
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Exactly representable powers of ten for bucket-bound generation (the
/// naive `10f64.powi` accumulates rounding that would print as
/// `0.00000019999…` in exported `le` labels).
fn pow10(e: i32) -> f64 {
    const TABLE: [f64; 25] = [
        1e-12, 1e-11, 1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1, 1e2,
        1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12,
    ];
    if (-12..=12).contains(&e) {
        TABLE[(e + 12) as usize]
    } else {
        10f64.powi(e)
    }
}

/// The standard log-linear bucket ladder: `{1, 2, 5} × 10^e` for every
/// exponent `e` in `min_exp..=max_exp` — three buckets per decade,
/// strictly increasing.
pub fn log_linear_bounds(min_exp: i32, max_exp: i32) -> Vec<f64> {
    assert!(
        min_exp <= max_exp,
        "log_linear_bounds: empty exponent range"
    );
    let mut bounds = Vec::with_capacity(3 * (max_exp - min_exp + 1) as usize);
    for e in min_exp..=max_exp {
        let base = pow10(e);
        bounds.push(base);
        bounds.push(2.0 * base);
        bounds.push(5.0 * base);
    }
    bounds
}

/// Default bucket bounds for duration histograms: 100 ns to 500 s, three
/// buckets per decade (covers an LP pivot batch up to a full-day run).
pub fn duration_bounds() -> Vec<f64> {
    log_linear_bounds(-7, 2)
}

/// A fixed-bucket histogram. Bucket `i` counts observations `v` with
/// `bounds[i-1] < v <= bounds[i]` (Prometheus `le` semantics); one
/// implicit overflow bucket catches everything above the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus the overflow (`+Inf`) slot.
    buckets: Vec<AtomicU64>,
    sum: Gauge,
}

impl Histogram {
    /// A histogram over explicit bucket bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// increasing.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for w in bounds.windows(2) {
            assert!(
                w[0] < w[1],
                "histogram bounds must be strictly increasing: {} then {}",
                w[0],
                w[1]
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (the +Inf bucket is implicit)"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            sum: Gauge::new(),
        }
    }

    /// A log-linear histogram (see [`log_linear_bounds`]).
    pub fn log_linear(min_exp: i32, max_exp: i32) -> Self {
        Histogram::with_bounds(log_linear_bounds(min_exp, max_exp))
    }

    /// Records one observation. `NaN` observations are dropped (they have
    /// no place on the bucket axis); everything else lands in the first
    /// bucket whose bound is `>= value`, or in the overflow bucket.
    // palb:hot-path(no-alloc)
    pub fn observe(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|b| value > *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.add(value);
    }

    /// The bucket bounds (overflow bucket excluded).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, overflow last (`bounds().len() + 1` entries).
    /// Counts are **not** cumulative; exporters accumulate as needed.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum.get()
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the bucket counts.
    ///
    /// The rank is located on the cumulative bucket counts and then
    /// interpolated inside the owning bucket: geometrically when both
    /// bucket edges are positive (the right model for the log-linear
    /// 1-2-5 ladder, where observations spread multiplicatively), and
    /// linearly otherwise (first bucket's lower edge is taken as `0`).
    /// Observations in the overflow bucket clamp to the last finite
    /// bound — there is no upper edge to interpolate toward.
    ///
    /// Returns `None` when the histogram is empty or `q` is `NaN` or
    /// outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = q * total as f64;
        let last_bound = self.bounds[self.bounds.len() - 1];
        let mut cum: u64 = 0;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let below = cum as f64;
            cum += c;
            if (cum as f64) < target {
                continue;
            }
            if i == self.bounds.len() {
                // Overflow bucket: clamp to the last finite bound.
                return Some(last_bound);
            }
            let hi = self.bounds[i];
            let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
            let frac = ((target - below) / c as f64).clamp(0.0, 1.0);
            if lo > 0.0 && hi > 0.0 {
                return Some(lo * (hi / lo).powf(frac));
            }
            return Some(lo + (hi - lo) * frac);
        }
        Some(last_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_increments() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_sets_and_accumulates() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn concurrent_counter_and_gauge_updates_all_land() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        g.add(1.0);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(g.get(), 4000.0);
    }

    #[test]
    fn log_linear_ladder_is_the_125_pattern() {
        let b = log_linear_bounds(-1, 1);
        assert_eq!(b.len(), 9);
        assert_eq!(b[0], 0.1);
        assert_eq!(b[1], 0.2);
        assert_eq!(b[2], 0.5);
        assert_eq!(b[3], 1.0);
        assert_eq!(b[8], 50.0);
        for w in b.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Decimal-exact bounds, so exported `le` labels print cleanly.
        assert_eq!(format!("{}", log_linear_bounds(-7, -7)[1]), "0.0000002");
    }

    #[test]
    fn histogram_bucket_edges_use_le_semantics() {
        let h = Histogram::with_bounds(vec![1.0, 10.0]);
        h.observe(-5.0); // below everything -> first bucket
        h.observe(0.0); // first bucket
        h.observe(1.0); // exactly on a bound -> that bucket (le)
        h.observe(1.0000001); // just above -> next bucket
        h.observe(10.0); // second bucket
        h.observe(11.0); // overflow
        h.observe(f64::INFINITY); // overflow
        h.observe(f64::NAN); // dropped
        assert_eq!(h.bucket_counts(), vec![3, 2, 2]);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_sum_tracks_observations() {
        let h = Histogram::with_bounds(vec![0.5, 1.0]);
        h.observe(0.25);
        h.observe(0.5);
        h.observe(4.0);
        assert_eq!(h.sum(), 4.75);
        assert_eq!(h.bucket_counts(), vec![2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_bounds_are_rejected() {
        Histogram::with_bounds(vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn empty_bounds_are_rejected() {
        Histogram::with_bounds(vec![]);
    }

    #[test]
    fn quantile_rejects_empty_and_out_of_range() {
        let h = Histogram::with_bounds(vec![1.0, 2.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantile");
        h.observe(1.5);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        assert_eq!(h.quantile(f64::NAN), None);
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn quantile_interpolates_geometrically_on_log_linear_buckets() {
        // All mass in the (1.0, 2.0] bucket: the median interpolates to
        // the geometric midpoint sqrt(2), not the arithmetic 1.5.
        let h = Histogram::with_bounds(vec![1.0, 2.0, 5.0]);
        h.observe(1.5);
        h.observe(1.5);
        let q = h.quantile(0.5).unwrap();
        assert!((q - 2f64.sqrt()).abs() < 1e-12, "got {q}");
        // q = 0 pins to the bucket's lower edge, q = 1 to its upper edge.
        assert!((h.quantile(0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((h.quantile(1.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_first_bucket_interpolates_linearly_from_zero() {
        let h = Histogram::with_bounds(vec![4.0, 8.0]);
        h.observe(1.0);
        h.observe(2.0);
        // Both observations in the first bucket (lower edge 0): the
        // median is halfway up the bucket by count, i.e. at 2.0.
        let q = h.quantile(0.5).unwrap();
        assert!((q - 2.0).abs() < 1e-12, "got {q}");
    }

    #[test]
    fn quantile_walks_cumulative_counts_across_buckets() {
        let h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for _ in 0..90 {
            h.observe(0.5); // first bucket
        }
        for _ in 0..10 {
            h.observe(3.0); // third bucket
        }
        // p50 lands inside the first bucket, p99 inside (2, 4].
        assert!(h.quantile(0.5).unwrap() <= 1.0);
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > 2.0 && p99 <= 4.0, "got {p99}");
    }

    #[test]
    fn quantile_clamps_overflow_to_last_bound() {
        let h = Histogram::with_bounds(vec![1.0, 2.0]);
        h.observe(100.0);
        h.observe(200.0);
        assert_eq!(h.quantile(0.99), Some(2.0));
        assert_eq!(h.quantile(0.5), Some(2.0));
    }

    #[test]
    fn duration_bounds_cover_nanoseconds_to_minutes() {
        let b = duration_bounds();
        assert!(b[0] <= 1e-6);
        assert!(*b.last().unwrap() >= 100.0);
        assert_eq!(b.len(), 30);
    }
}
