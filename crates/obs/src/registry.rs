//! The metrics registry: get-or-create registration behind a short mutex,
//! lock-free shared handles afterwards, deterministic snapshots.

use std::collections::BTreeMap;

use crate::metrics::{Counter, Gauge, Histogram};
use crate::sync::{Arc, Mutex};

/// Interned immutable identity data. Deliberately `std`'s `Arc` even
/// under a loom build: there is no concurrency protocol to model-check
/// in shared ownership of frozen strings, and loom's `Arc` does not
/// support unsized `str` payloads.
use std::sync::Arc as Interned;

/// A metric identity: family name plus sorted label pairs. `BTreeMap`
/// ordering over this key is what makes snapshots and exports
/// deterministic.
///
/// Name and labels are interned (`Arc`) so every [`Registry::snapshot`]
/// shares the registration-time allocation instead of cloning each
/// family name per export.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: Interned<str>,
    labels: Interned<Vec<(String, String)>>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: Interned::from(name),
            labels: Interned::new(labels),
        }
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics. Registration (`counter` / `gauge` /
/// `histogram`) takes a mutex briefly and returns a shared handle;
/// instrumented code caches or re-looks-up handles and updates them with
/// single atomics.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter `name{labels}`.
    ///
    /// # Panics
    /// Panics if the same (name, labels) was already registered as a
    /// different metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        let mut map = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let metric = map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!(
                "metric {name} already registered as {}, requested counter",
                other.kind()
            ),
        }
    }

    /// Gets or creates the gauge `name{labels}`.
    ///
    /// # Panics
    /// Panics on a metric-kind mismatch, as for [`Registry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        let mut map = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let metric = map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!(
                "metric {name} already registered as {}, requested gauge",
                other.kind()
            ),
        }
    }

    /// Gets or creates the histogram `name{labels}` with the given bucket
    /// bounds. The bounds only apply on first registration; later calls
    /// return the existing histogram regardless of the bounds passed.
    ///
    /// # Panics
    /// Panics on a metric-kind mismatch, as for [`Registry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        let mut map = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let metric = map.entry(key).or_insert_with(|| {
            Metric::Histogram(Arc::new(Histogram::with_bounds(bounds.to_vec())))
        });
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!(
                "metric {name} already registered as {}, requested histogram",
                other.kind()
            ),
        }
    }

    /// A point-in-time copy of every metric, in (name, labels) order.
    pub fn snapshot(&self) -> Snapshot {
        let map = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let samples = map
            .iter()
            .map(|(key, metric)| {
                let value = match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(HistogramSnapshot {
                        bounds: h.bounds().to_vec(),
                        counts: h.bucket_counts(),
                        sum: h.sum(),
                        count: h.count(),
                    }),
                };
                Sample {
                    name: Interned::clone(&key.name),
                    labels: Interned::clone(&key.labels),
                    value,
                }
            })
            .collect();
        Snapshot { samples }
    }
}

/// Frozen state of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (the implicit `+Inf` bucket is excluded).
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; the last entry is the
    /// overflow bucket, so `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

/// One metric's frozen value.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One metric at snapshot time: name, sorted labels, value.
///
/// `name` and `labels` are shared with the registry's own key
/// (registration-time interning), so cloning a `Sample` — or taking
/// repeated snapshots — bumps two refcounts instead of re-allocating
/// the strings.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric family name (interned; derefs to `&str`).
    pub name: std::sync::Arc<str>,
    /// Sorted label pairs (interned; derefs to the vec).
    pub labels: std::sync::Arc<Vec<(String, String)>>,
    /// The frozen value.
    pub value: SampleValue,
}

/// A deterministic point-in-time copy of a registry, ready for export
/// (see [`Snapshot::to_prometheus`] / [`Snapshot::to_jsonl`] in
/// `crate::export`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All samples in (name, labels) order.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Looks up a counter sample by family name and labels (labels in any
    /// order). Returns `None` if absent or not a counter.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.samples
            .iter()
            .find(|s| &*s.name == name && *s.labels == want)
            .and_then(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
    }

    /// True if any sample belongs to the family `name`.
    pub fn contains_family(&self, name: &str) -> bool {
        self.samples.iter().any(|s| &*s.name == name)
    }

    /// Sum of all counter samples in the family `name` (across labels).
    pub fn family_counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| &*s.name == name)
            .filter_map(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_returns_the_same_handle() {
        let reg = Registry::new();
        let a = reg.counter("palb_x_total", &[("k", "v")]);
        let b = reg.counter("palb_x_total", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn label_order_does_not_split_metrics() {
        let reg = Registry::new();
        let a = reg.counter("palb_x_total", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("palb_x_total", &[("b", "2"), ("a", "1")]);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "already registered as counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("palb_x_total", &[]);
        reg.gauge("palb_x_total", &[]);
    }

    #[test]
    fn snapshot_is_ordered_and_frozen() {
        let reg = Registry::new();
        reg.counter("palb_z_total", &[]).add(3);
        reg.gauge("palb_a_value", &[]).set(1.5);
        reg.counter("palb_m_total", &[("dc", "1")]).inc();
        reg.counter("palb_m_total", &[("dc", "0")]).inc();

        let snap = reg.snapshot();
        let names: Vec<&str> = snap.samples.iter().map(|s| &*s.name).collect();
        assert_eq!(
            names,
            vec![
                "palb_a_value",
                "palb_m_total",
                "palb_m_total",
                "palb_z_total"
            ]
        );
        // Within a family, label order decides.
        assert_eq!(*snap.samples[1].labels, vec![("dc".into(), "0".into())]);
        assert_eq!(snap.counter_value("palb_z_total", &[]), Some(3));
        assert_eq!(snap.counter_value("palb_m_total", &[("dc", "1")]), Some(1));
        assert_eq!(snap.family_counter_total("palb_m_total"), 2);
        assert!(snap.contains_family("palb_a_value"));
        assert!(!snap.contains_family("palb_missing"));

        // Mutations after the snapshot don't bleed in.
        reg.counter("palb_z_total", &[]).add(10);
        assert_eq!(snap.counter_value("palb_z_total", &[]), Some(3));
    }

    #[test]
    fn snapshots_share_interned_identity() {
        let reg = Registry::new();
        reg.counter("palb_x_total", &[("dc", "0")]).inc();
        let a = reg.snapshot();
        let b = reg.snapshot();
        // Two snapshots point at the registration-time allocations — no
        // per-export name/label clones.
        assert!(Interned::ptr_eq(&a.samples[0].name, &b.samples[0].name));
        assert!(Interned::ptr_eq(&a.samples[0].labels, &b.samples[0].labels));
        // And a cloned snapshot shares them too.
        let c = b.clone();
        assert!(Interned::ptr_eq(&b.samples[0].name, &c.samples[0].name));
    }

    #[test]
    fn histogram_snapshot_carries_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("palb_h_seconds", &[], &[0.5, 1.0]);
        h.observe(0.25);
        h.observe(0.5);
        h.observe(4.0);
        let snap = reg.snapshot();
        match &snap.samples[0].value {
            SampleValue::Histogram(hs) => {
                assert_eq!(hs.bounds, vec![0.5, 1.0]);
                assert_eq!(hs.counts, vec![2, 0, 1]);
                assert_eq!(hs.sum, 4.75);
                assert_eq!(hs.count, 3);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
