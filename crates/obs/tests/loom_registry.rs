//! Loom models of the obs registry hot path: get-or-create under the
//! registration mutex, then lock-free metric updates through the shared
//! handles.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (`cargo xtask loom`, the
//! CI loom job). Loom swaps [`palb_obs::sync`]'s re-exports for its
//! instrumented `Mutex`/atomics, so every interleaving of the
//! registration race and of the `Gauge`/`Histogram` CAS loops is
//! explored, not sampled.
#![cfg(loom)]

use palb_obs::sync::Arc;
use palb_obs::Registry;

/// Two threads racing to register the same counter get the same
/// underlying metric: both increments land and the final value is 2.
#[test]
fn racing_registrations_converge_on_one_metric() {
    loom::model(|| {
        let reg = Arc::new(Registry::new());
        let hit = |r: Arc<Registry>| {
            loom::thread::spawn(move || {
                r.counter("palb_loom_total", &[("dc", "0")]).inc();
            })
        };
        let t1 = hit(Arc::clone(&reg));
        let t2 = hit(Arc::clone(&reg));
        t1.join().unwrap();
        t2.join().unwrap();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_value("palb_loom_total", &[("dc", "0")]),
            Some(2)
        );
        assert_eq!(snap.samples.len(), 1);
    });
}

/// The gauge's f64-bits CAS loop loses no update: two concurrent `add`s
/// both land on every interleaving.
#[test]
fn gauge_cas_add_loses_no_update() {
    loom::model(|| {
        let reg = Arc::new(Registry::new());
        let gauge = reg.gauge("palb_loom_gauge", &[]);
        let t1 = {
            let g = Arc::clone(&gauge);
            loom::thread::spawn(move || g.add(1.0))
        };
        let t2 = {
            let g = Arc::clone(&gauge);
            loom::thread::spawn(move || g.add(2.0))
        };
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(gauge.get().to_bits(), 3.0f64.to_bits());
    });
}

/// A snapshot taken while another thread registers-and-increments is
/// internally consistent on every interleaving: the racing family is
/// either absent, present at 0 (registered, increment not yet visible)
/// or present at 1 — and a metric registered before the race is always
/// present with its final value.
#[test]
fn snapshot_race_is_absent_or_consistent() {
    loom::model(|| {
        let reg = Arc::new(Registry::new());
        reg.counter("palb_loom_stable_total", &[]).add(5);
        let writer = {
            let r = Arc::clone(&reg);
            loom::thread::spawn(move || {
                r.counter("palb_loom_racy_total", &[]).inc();
            })
        };
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("palb_loom_stable_total", &[]), Some(5));
        match snap.counter_value("palb_loom_racy_total", &[]) {
            None | Some(0) | Some(1) => {}
            Some(other) => panic!("impossible racy counter value {other}"),
        }
        writer.join().unwrap();
        let done = reg.snapshot();
        assert_eq!(done.counter_value("palb_loom_racy_total", &[]), Some(1));
    });
}
