//! Exporter regression tests: the snapshot/export pipeline at its edges —
//! empty registries, overflow-only histograms, and snapshots taken while
//! other threads are still registering metrics.

use std::sync::Arc;

use palb_obs::{Registry, SampleValue};

#[test]
fn empty_registry_exports_empty_documents() {
    let reg = Registry::new();
    let snap = reg.snapshot();
    assert!(snap.samples.is_empty());
    assert_eq!(snap.to_prometheus(), "");
    assert_eq!(snap.to_jsonl(), "");
    assert!(!snap.contains_family("palb_anything"));
    assert_eq!(snap.family_counter_total("palb_anything"), 0);
}

#[test]
fn overflow_only_histogram_exports_correctly() {
    let reg = Registry::new();
    let h = reg.histogram("palb_over_seconds", &[], &[0.5, 1.0]);
    // Every observation lands beyond the last finite bound.
    h.observe(2.0);
    h.observe(100.0);

    let snap = reg.snapshot();
    match &snap.samples[0].value {
        SampleValue::Histogram(hs) => {
            assert_eq!(hs.counts, vec![0, 0, 2]);
            assert_eq!(hs.count, 2);
            assert_eq!(hs.sum, 102.0);
        }
        other => panic!("expected histogram, got {other:?}"),
    }

    // Prometheus buckets are cumulative: the finite buckets stay at 0 and
    // only le="+Inf" carries the observations.
    let text = snap.to_prometheus();
    assert!(text.contains("palb_over_seconds_bucket{le=\"0.5\"} 0"));
    assert!(text.contains("palb_over_seconds_bucket{le=\"1\"} 0"));
    assert!(text.contains("palb_over_seconds_bucket{le=\"+Inf\"} 2"));
    assert!(text.contains("palb_over_seconds_sum 102"));
    assert!(text.contains("palb_over_seconds_count 2"));

    // JSONL keeps the overflow bucket as its own field.
    let jsonl = snap.to_jsonl();
    assert!(jsonl.contains("\"counts\":[0,0]"));
    assert!(jsonl.contains("\"overflow\":2"));
}

#[test]
fn nan_is_dropped_and_infinity_lands_in_overflow() {
    let reg = Registry::new();
    let h = reg.histogram("palb_nan_seconds", &[], &[1.0]);
    h.observe(f64::NAN);
    h.observe(f64::INFINITY);
    h.observe(0.5);
    let snap = reg.snapshot();
    match &snap.samples[0].value {
        SampleValue::Histogram(hs) => {
            assert_eq!(hs.count, 2);
            assert_eq!(hs.counts, vec![1, 1]);
            assert!(hs.sum.is_infinite());
        }
        other => panic!("expected histogram, got {other:?}"),
    }
    // JSON cannot express +Inf: the sum renders as null, and the line
    // stays structurally valid.
    let jsonl = snap.to_jsonl();
    assert!(jsonl.contains("\"sum\":null"));
}

/// Snapshots racing live registration must always be internally
/// consistent: samples sorted by (name, labels), histogram bucket counts
/// summing to the histogram count, and no torn or duplicated entries.
#[test]
fn concurrent_registration_snapshots_stay_consistent() {
    let reg = Arc::new(Registry::new());
    let check = |snap: &palb_obs::Snapshot| {
        for pair in snap.samples.windows(2) {
            assert!(
                (&pair[0].name, &pair[0].labels) < (&pair[1].name, &pair[1].labels),
                "snapshot not strictly sorted"
            );
        }
        for s in &snap.samples {
            if let SampleValue::Histogram(hs) = &s.value {
                assert_eq!(hs.counts.len(), hs.bounds.len() + 1);
                assert_eq!(hs.counts.iter().sum::<u64>(), hs.count);
            }
        }
    };

    std::thread::scope(|scope| {
        for t in 0..4 {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                let dc = t.to_string();
                for i in 0..200 {
                    reg.counter("palb_race_total", &[("dc", &dc)]).inc();
                    let h = reg.histogram("palb_race_seconds", &[("dc", &dc)], &[0.5, 1.0]);
                    h.observe(f64::from(i) / 100.0);
                    reg.gauge("palb_race_value", &[("dc", &dc)])
                        .set(f64::from(i));
                }
            });
        }
        // Snapshot repeatedly while the writers run.
        for _ in 0..50 {
            check(&reg.snapshot());
        }
    });

    // Quiescent state: everything registered, all updates visible.
    let snap = reg.snapshot();
    check(&snap);
    assert_eq!(snap.family_counter_total("palb_race_total"), 800);
    for t in 0..4 {
        let dc = t.to_string();
        assert_eq!(
            snap.counter_value("palb_race_total", &[("dc", &dc)]),
            Some(200)
        );
    }
    let histograms = snap
        .samples
        .iter()
        .filter(|s| &*s.name == "palb_race_seconds")
        .count();
    assert_eq!(histograms, 4);
    // The export pipeline renders the racy registry deterministically.
    assert_eq!(snap.to_prometheus(), reg.snapshot().to_prometheus());
}
