//! Thin binary wrapper over [`palb_cli`]: parse, execute, print.

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match palb_cli::parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match palb_cli::execute(&cli) {
        Ok(out) => {
            // Tolerate a closed pipe (e.g. `palb ... | head`).
            let mut stdout = std::io::stdout().lock();
            let _ = writeln!(stdout, "{out}");
            let _ = stdout.flush();
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
