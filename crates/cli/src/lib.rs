// palb:lint-tier = bin
//! # palb-cli — command-line interface to the profit-aware load balancer
//!
//! Lets an operator run the paper's controller on *their own* system and
//! workload descriptions (JSON) without writing Rust:
//!
//! ```text
//! palb preset section_vi > system.json
//! palb trace diurnal --peak 80000 --slots 24 --front-ends 4 --classes 3 > trace.json
//! palb run --system system.json --trace trace.json --policy optimized
//! palb run --system system.json --trace trace.json --policy quantile=0.9 --json
//! palb lp --system system.json --trace trace.json --slot 12 > slot12.lp
//! palb fault-tolerance --fault-rate 0.1 --seed 42
//! palb stress --json --out BENCH_scenarios.json --baseline BENCH_scenarios_baseline.json
//! palb stress --scenario black_swan --nan-rate 0.1
//! palb stress --scenario price_shock --lp-engine sparse
//! palb replay --rps 2000000 --threads 4
//! palb replay --sweep --rps 2000000 --json --out BENCH_serve.json
//! ```
//!
//! All command logic lives in this library (returning strings/errors) so
//! it is unit-testable without spawning processes; `src/bin/palb.rs` is a
//! thin wrapper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fs;
use std::sync::Arc;

use palb_bench::experiments::scenario_matrix;
use palb_bench::experiments::{fault_tolerance, serve_bench, solver_perf, sparse_lp};
use palb_bench::json::{
    fault_tolerance_to_json, scenario_matrix_to_json, serve_study_to_json, solver_perf_to_json,
    sparse_study_to_json,
};
use palb_cluster::{presets, System};
use palb_core::obs::{Recorder, Registry};
use palb_core::report::summary_table;
use palb_core::{
    lp_text, parse_solver_kind, run_with, BalancedPolicy, Dims, LevelAssignment, OptimizedPolicy,
    Policy, QuantileSlaPolicy, ResilientOptions, ResilientPolicy, RunOptions, RunResult,
    SolverConfig, SolverKind,
};
use palb_lp::EngineKind;
use palb_workload::burst::{self, BurstConfig};
use palb_workload::diurnal::{self, DiurnalConfig};
use palb_workload::fault::RateFaultConfig;
use palb_workload::scenario::Scenario;
use palb_workload::Trace;

/// A parsed command line: subcommand, positional args, `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// The subcommand name.
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options (`--flag` alone stores an empty string).
    pub options: BTreeMap<String, String>,
}

/// Parses raw arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Cli, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let mut positional = Vec::new();
    let mut options = BTreeMap::new();
    let mut i = 1;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let value = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                i += 1;
                args[i].clone()
            } else {
                String::new()
            };
            options.insert(key.to_string(), value);
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Ok(Cli {
        command: command.clone(),
        positional,
        options,
    })
}

/// The usage text.
pub fn usage() -> String {
    "usage: palb <command>\n\
     commands:\n\
     \x20 preset <section_v|section_vi|section_vii>   print a preset system as JSON\n\
     \x20 trace <diurnal|burst> [--peak R] [--mean R] [--slots N]\n\
     \x20       [--front-ends N] [--classes N] [--seed S]       print a trace as JSON\n\
     \x20 run --system FILE --trace FILE\n\
     \x20     [--policy optimized|balanced|resilient|quantile=P]\n\
     \x20     [--solver exact|anytime|portfolio|uniform] [--budget-ms N]\n\
     \x20     [--start N] [--solver-threads N] [--json]\n\
     \x20     [--lp-engine auto|dense|sparse]\n\
     \x20     [--metrics FILE] [--metrics-format prom|jsonl]     run and summarize\n\
     \x20 lp --system FILE --trace FILE --slot N                 export one slot's LP\n\
     \x20 fault-tolerance [--fault-rate R] [--seed S] [--json]   degraded-mode study\n\
     \x20 solver-perf [--servers N] [--json]       warm-start vs cold-rebuild study\n\
     \x20 solver-perf --sparse [--json]        sparse vs dense LP engine study\n\
     \x20 stress [--scenario NAME] [--seed S] [--solver-threads N] [--json]\n\
     \x20        [--lp-engine auto|dense|sparse] [--out FILE] [--baseline FILE]\n\
     \x20        [--nan-rate R] [--negative-rate R] [--spike-rate R]\n\
     \x20        [--spike-factor F]                    adversarial scenario scorecard\n\
     \x20 replay [--rps N] [--threads T[,T...] | --sweep] [--slots N] [--json]\n\
     \x20        [--out FILE] [--floor R]     live-dispatcher replay bench (routed\n\
     \x20                                     req/s, p99 route latency, drift drill)\n"
        .to_string()
}

/// Executes a parsed command, returning the text to print.
pub fn execute(cli: &Cli) -> Result<String, String> {
    match cli.command.as_str() {
        "preset" => cmd_preset(cli),
        "trace" => cmd_trace(cli),
        "run" => cmd_run(cli),
        "lp" => cmd_lp(cli),
        "fault-tolerance" => cmd_fault_tolerance(cli),
        "solver-perf" => cmd_solver_perf(cli),
        "stress" => cmd_stress(cli),
        "replay" => cmd_replay(cli),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn cmd_preset(cli: &Cli) -> Result<String, String> {
    let name = cli
        .positional
        .first()
        .ok_or("preset requires a name (section_v | section_vi | section_vii)")?;
    let system = match name.as_str() {
        "section_v" => presets::section_v(),
        "section_vi" => presets::section_vi(),
        "section_vii" => presets::section_vii(),
        other => return Err(format!("unknown preset `{other}`")),
    };
    serde_json::to_string_pretty(&system).map_err(|e| e.to_string())
}

fn opt_f64(cli: &Cli, key: &str, default: f64) -> Result<f64, String> {
    match cli.options.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
    }
}

fn opt_usize(cli: &Cli, key: &str, default: usize) -> Result<usize, String> {
    match cli.options.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer `{v}`")),
    }
}

fn cmd_trace(cli: &Cli) -> Result<String, String> {
    let kind = cli
        .positional
        .first()
        .ok_or("trace requires a kind (diurnal | burst)")?;
    let trace = match kind.as_str() {
        "diurnal" => diurnal::generate(&DiurnalConfig {
            front_ends: opt_usize(cli, "front-ends", 4)?,
            classes: opt_usize(cli, "classes", 3)?,
            slots: opt_usize(cli, "slots", 24)?,
            peak_rate: opt_f64(cli, "peak", 60_000.0)?,
            seed: opt_usize(cli, "seed", 1998)? as u64,
            ..DiurnalConfig::default()
        }),
        "burst" => burst::generate(&BurstConfig {
            front_ends: opt_usize(cli, "front-ends", 1)?,
            classes: opt_usize(cli, "classes", 2)?,
            slots: opt_usize(cli, "slots", 7)?,
            mean_rate: opt_f64(cli, "mean", 60_000.0)?,
            seed: opt_usize(cli, "seed", 2010)? as u64,
            ..BurstConfig::default()
        }),
        other => return Err(format!("unknown trace kind `{other}`")),
    };
    serde_json::to_string_pretty(&trace).map_err(|e| e.to_string())
}

/// Loads and validates a system description from a JSON file.
pub fn load_system(path: &str) -> Result<System, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let system: System = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    system.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(system)
}

/// Loads a trace from a JSON file.
pub fn load_trace(path: &str) -> Result<Trace, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

/// Builds the policy named on the command line (single-threaded solver).
pub fn make_policy(spec: &str) -> Result<Box<dyn Policy>, String> {
    make_policy_with(spec, 1)
}

/// Builds the policy named on the command line, with `threads` worker
/// threads for the exact branch-and-bound solver (`--solver-threads`).
/// Thread count changes wall-clock only, never results outside the
/// solver's documented near-tie tolerance (see `SolverConfig::threads`);
/// policies that do not use the exact solver ignore it.
pub fn make_policy_with(spec: &str, threads: usize) -> Result<Box<dyn Policy>, String> {
    make_policy_opts(spec, threads, EngineKind::Auto)
}

/// Parses a `--lp-engine` value. `auto` (the default) sizes each LP and
/// picks; `dense` and `sparse` force the respective engine. The two
/// engines are bitwise-identical on every input, so this is a performance
/// knob, never a results knob.
pub fn parse_engine(spec: &str) -> Result<EngineKind, String> {
    match spec {
        "auto" => Ok(EngineKind::Auto),
        "dense" => Ok(EngineKind::Dense),
        "sparse" => Ok(EngineKind::Sparse),
        other => Err(format!(
            "--lp-engine must be `auto`, `dense`, or `sparse`, got `{other}`"
        )),
    }
}

/// [`make_policy_with`] plus an LP engine override (`--lp-engine`).
/// Policies that never solve LPs (balanced) ignore the engine.
pub fn make_policy_opts(
    spec: &str,
    threads: usize,
    engine: EngineKind,
) -> Result<Box<dyn Policy>, String> {
    make_policy_solver(spec, "exact", threads, None, engine)
}

/// Resolves the `--solver` flag into a [`SolverConfig`], or `None` for
/// the `uniform` level heuristic (which has no solver configuration).
/// `budget_ms` (from `--budget-ms`) caps the wall clock of any kind;
/// for `exact` it turns the search into an anytime one — the incumbent
/// at the deadline comes back flagged not proven optimal.
pub fn parse_solver_config(
    solver: &str,
    threads: usize,
    budget_ms: Option<u64>,
    engine: EngineKind,
) -> Result<Option<SolverConfig>, String> {
    if solver == "uniform" {
        return Ok(None);
    }
    let kind = parse_solver_kind(solver).ok_or_else(|| {
        format!("--solver must be `exact`, `anytime`, `portfolio`, or `uniform`, got `{solver}`")
    })?;
    let mut cfg = match kind {
        SolverKind::Exact => SolverConfig::exact(),
        SolverKind::Anytime => SolverConfig::anytime(),
        SolverKind::Portfolio => SolverConfig::portfolio(),
    }
    .threads(threads);
    if let Some(ms) = budget_ms {
        cfg.budget.wall_clock_ms = Some(ms);
    }
    cfg.lp.engine = engine;
    Ok(Some(cfg))
}

/// The full policy builder behind `palb run`: policy spec plus the
/// solver-selection flags (`--solver`, `--solver-threads`,
/// `--budget-ms`, `--lp-engine`). The solver choice applies to the
/// policies that run the multilevel solver (`optimized`, `resilient`);
/// `balanced` never solves, and `quantile=P` pins the exact solver its
/// admission contract is stated for — selecting another solver for
/// those is an error rather than a silent ignore.
pub fn make_policy_solver(
    spec: &str,
    solver: &str,
    threads: usize,
    budget_ms: Option<u64>,
    engine: EngineKind,
) -> Result<Box<dyn Policy>, String> {
    if threads == 0 {
        return Err("--solver-threads must be at least 1".to_string());
    }
    let cfg = parse_solver_config(solver, threads, budget_ms, engine)?;
    if spec == "optimized" {
        return Ok(Box::new(match cfg {
            Some(cfg) => OptimizedPolicy::with_config(cfg),
            None => OptimizedPolicy::uniform(),
        }));
    }
    if !(solver == "exact" && budget_ms.is_none()) {
        if spec == "balanced" {
            return Err("--solver/--budget-ms do not apply to the balanced policy".to_string());
        }
        if spec.starts_with("quantile=") {
            return Err(
                "--solver/--budget-ms do not apply to quantile=P (it pins the exact solver)"
                    .to_string(),
            );
        }
    }
    if spec == "balanced" {
        return Ok(Box::new(BalancedPolicy));
    }
    if spec == "resilient" {
        let Some(cfg) = cfg else {
            return Err("--solver uniform does not apply to the resilient ladder".to_string());
        };
        let mut opts = ResilientOptions {
            solver: cfg,
            ..ResilientOptions::default()
        };
        // The Bland-retry tier keeps its pivot-rule settings but honours
        // the engine override.
        opts.retry_lp.engine = engine;
        return Ok(Box::new(ResilientPolicy::new(opts)));
    }
    if let Some(p) = spec.strip_prefix("quantile=") {
        let p: f64 = p.parse().map_err(|_| format!("bad quantile `{p}`"))?;
        if !(0.0 < p && p < 1.0) {
            return Err(format!("quantile must be in (0,1), got {p}"));
        }
        return Ok(Box::new(QuantileSlaPolicy::exact(p).with_lp_engine(engine)));
    }
    Err(format!(
        "unknown policy `{spec}` (optimized | balanced | resilient | quantile=P)"
    ))
}

fn compatible(system: &System, trace: &Trace) -> Result<(), String> {
    if trace.front_ends() != system.num_front_ends() || trace.classes() != system.num_classes() {
        return Err(format!(
            "trace is {}x{} (front-ends x classes) but the system is {}x{}",
            trace.front_ends(),
            trace.classes(),
            system.num_front_ends(),
            system.num_classes()
        ));
    }
    Ok(())
}

fn run_result_json(system: &System, result: &RunResult) -> String {
    // Minimal inline JSON (the bench crate has the full exporter; the CLI
    // avoids depending on it).
    let slots: Vec<String> = result
        .slots
        .iter()
        .map(|s| {
            format!(
                "{{\"slot\":{},\"net_profit\":{:.4},\"revenue\":{:.4},\"cost\":{:.4},\"completed\":{:.2},\"offered\":{:.2}}}",
                s.slot, s.net_profit, s.revenue, s.total_cost(), s.completed, s.offered
            )
        })
        .collect();
    let _ = system;
    format!(
        "{{\"policy\":\"{}\",\"total_net_profit\":{:.4},\"completion\":{:.6},\"slots\":[{}]}}",
        result.policy,
        result.total_net_profit(),
        result.completion_ratio(),
        slots.join(",")
    )
}

fn cmd_run(cli: &Cli) -> Result<String, String> {
    let system = load_system(cli.options.get("system").ok_or("run needs --system FILE")?)?;
    let trace = load_trace(cli.options.get("trace").ok_or("run needs --trace FILE")?)?;
    compatible(&system, &trace)?;
    let start = opt_usize(cli, "start", 0)?;
    let threads = opt_usize(cli, "solver-threads", 1)?;
    let default_policy = "optimized".to_string();
    let policy_spec = cli.options.get("policy").unwrap_or(&default_policy);
    let engine = match cli.options.get("lp-engine") {
        Some(spec) => parse_engine(spec)?,
        None => EngineKind::Auto,
    };
    let solver = cli
        .options
        .get("solver")
        .map(String::as_str)
        .unwrap_or("exact");
    let budget_ms = match cli.options.get("budget-ms") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--budget-ms: bad integer `{v}`"))?,
        ),
        None => None,
    };
    let mut policy = make_policy_solver(policy_spec, solver, threads, budget_ms, engine)?;

    let metrics_path = cli.options.get("metrics").filter(|p| !p.is_empty());
    let metrics_format = cli
        .options
        .get("metrics-format")
        .map(String::as_str)
        .unwrap_or("prom");
    if !matches!(metrics_format, "prom" | "jsonl") {
        return Err(format!(
            "--metrics-format must be `prom` or `jsonl`, got `{metrics_format}`"
        ));
    }
    if metrics_path.is_none() && cli.options.contains_key("metrics") {
        return Err("--metrics needs an output FILE".to_string());
    }

    // Only pay for telemetry when an export was requested.
    let registry = metrics_path.map(|_| Arc::new(Registry::new()));
    let obs = registry
        .as_ref()
        .map(|r| Recorder::attached(Arc::clone(r)))
        .unwrap_or_default();
    let opts = RunOptions::at(start).with_obs(obs);
    let result = run_with(policy.as_mut(), &system, &trace, &opts)
        .map_err(|e| e.to_string())?
        .result;

    if let (Some(path), Some(registry)) = (metrics_path, &registry) {
        let snap = registry.snapshot();
        let text = match metrics_format {
            "jsonl" => snap.to_jsonl(),
            _ => snap.to_prometheus(),
        };
        fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    }

    if cli.options.contains_key("json") {
        Ok(run_result_json(&system, &result))
    } else {
        // Compare against the baseline for context unless it *is* the run.
        if policy_spec == "balanced" {
            let mut out = summary_table(&result, &result);
            out.push_str(&format!(
                "total net profit: ${:.2}\n",
                result.total_net_profit()
            ));
            Ok(out)
        } else {
            let baseline = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(start))
                .map(|p| p.result)
                .map_err(|e| e.to_string())?;
            Ok(summary_table(&result, &baseline))
        }
    }
}

fn cmd_lp(cli: &Cli) -> Result<String, String> {
    let system = load_system(cli.options.get("system").ok_or("lp needs --system FILE")?)?;
    let trace = load_trace(cli.options.get("trace").ok_or("lp needs --trace FILE")?)?;
    compatible(&system, &trace)?;
    let slot = opt_usize(cli, "slot", 0)?;
    if slot >= trace.slots() {
        return Err(format!(
            "--slot {slot} out of range (trace has {})",
            trace.slots()
        ));
    }
    let dims = Dims::of(&system);
    // One-level TUFs use level 1; multi-level models export the loosest
    // assignment (the root of the branch-and-bound tree).
    let one_level = system.classes.iter().all(|c| c.tuf.num_levels() == 1);
    let assignment = if one_level {
        LevelAssignment::uniform(&dims, 1)
    } else {
        LevelAssignment::loosest(&system, &dims)
    };
    lp_text(&system, trace.slot(slot), slot, &assignment).map_err(|e| e.to_string())
}

fn cmd_fault_tolerance(cli: &Cli) -> Result<String, String> {
    let fault_rate = opt_f64(cli, "fault-rate", 0.1)?;
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(format!(
            "--fault-rate must be a probability in [0,1], got {fault_rate}"
        ));
    }
    let seed = opt_usize(cli, "seed", 42)? as u64;
    if cli.options.contains_key("json") {
        let result = fault_tolerance::study(fault_rate, seed);
        serde_json::to_string_pretty(&fault_tolerance_to_json(&result)).map_err(|e| e.to_string())
    } else {
        Ok(fault_tolerance::report(fault_rate, seed))
    }
}

fn cmd_solver_perf(cli: &Cli) -> Result<String, String> {
    if cli.options.contains_key("sparse") {
        // The sparse-engine study (parity everywhere + the large-sparse
        // head-to-head); `repro -- sparse-lp` gates CI on the same run.
        let study = sparse_lp::study(3);
        return if cli.options.contains_key("json") {
            serde_json::to_string_pretty(&sparse_study_to_json(&study)).map_err(|e| e.to_string())
        } else {
            Ok(sparse_lp::render(&study))
        };
    }
    let servers = opt_usize(cli, "servers", 5)?;
    if !(2..=8).contains(&servers) {
        return Err(format!(
            "--servers must be in [2,8] (the study sweeps 2..=N), got {servers}"
        ));
    }
    if cli.options.contains_key("json") {
        let study = solver_perf::study(servers, 3);
        let sweep = solver_perf::thread_scaling(servers, &solver_perf::DEFAULT_THREAD_SWEEP, 3);
        serde_json::to_string_pretty(&solver_perf_to_json(&study, Some(&sweep)))
            .map_err(|e| e.to_string())
    } else {
        Ok(solver_perf::report(servers))
    }
}

/// Builds the scenario list `palb stress` will run from the `--scenario`
/// selector plus the `--nan-rate`/`--negative-rate`/`--spike-rate`
/// telemetry-fault overlay flags. Selection, overlay validation (via
/// `RateFaultConfig::validate`, the same boundary check library callers
/// hit) and the error messages all live in
/// `palb_bench::experiments::scenario_matrix::select`.
pub fn stress_scenarios(cli: &Cli, seed: u64) -> Result<Vec<Scenario>, String> {
    let fault_flags = ["nan-rate", "negative-rate", "spike-rate", "spike-factor"];
    let overlay = if fault_flags.iter().any(|k| cli.options.contains_key(*k)) {
        Some(RateFaultConfig {
            seed,
            nan_burst_prob: opt_f64(cli, "nan-rate", 0.0)?,
            negative_prob: opt_f64(cli, "negative-rate", 0.0)?,
            spike_prob: opt_f64(cli, "spike-rate", 0.0)?,
            spike_factor: opt_f64(cli, "spike-factor", RateFaultConfig::default().spike_factor)?,
        })
    } else {
        None
    };
    let name = cli.options.get("scenario").filter(|s| !s.is_empty());
    scenario_matrix::select(name.map(String::as_str), overlay)
}

fn cmd_stress(cli: &Cli) -> Result<String, String> {
    let seed = match cli.options.get("seed") {
        None => scenario_matrix::DEFAULT_SEED,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--seed: bad integer `{v}`"))?,
    };
    let threads = opt_usize(cli, "solver-threads", 2)?;
    if threads == 0 {
        return Err("--solver-threads must be at least 1".to_string());
    }
    let engine = match cli.options.get("lp-engine") {
        Some(spec) => parse_engine(spec)?,
        None => EngineKind::Auto,
    };
    let scenarios = stress_scenarios(cli, seed)?;
    let m = scenario_matrix::matrix_for_engine(seed, threads, &scenarios, engine);

    let output = if cli.options.contains_key("json") {
        serde_json::to_string_pretty(&scenario_matrix_to_json(&m)).map_err(|e| e.to_string())?
    } else {
        scenario_matrix::render(&m)
    };
    // The artifact lands on disk before the gates run, so CI can archive
    // the scorecard of a failing run.
    if let Some(path) = cli.options.get("out").filter(|p| !p.is_empty()) {
        let json = serde_json::to_string_pretty(&scenario_matrix_to_json(&m))
            .map_err(|e| e.to_string())?;
        fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    }

    if m.resilient_floor() < 0.8 {
        return Err(format!(
            "resilient retention floor {:.1}% below the 80% gate\n{}",
            100.0 * m.resilient_floor(),
            m.table()
        ));
    }
    if let Some(path) = cli.options.get("baseline").filter(|p| !p.is_empty()) {
        let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let base: serde_json::Value =
            serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
        scenario_matrix::check_baseline(&m, &base, path)?;
    }
    Ok(output)
}

/// Routing-mix divergence ceiling for `palb replay`: the worst
/// per-(class, front-end, target) gap between the empirical routing mix
/// and the plan's φ fractions. Matches `repro serve`.
const REPLAY_MIX_CEILING: f64 = 0.05;

/// Parses a `--threads` value: one count or a comma-separated sweep
/// (`4` or `1,2,4,8`), every entry at least 1.
pub fn parse_thread_list(spec: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let t: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("--threads: bad thread count `{part}`"))?;
        if t == 0 {
            return Err("--threads entries must be at least 1".to_string());
        }
        out.push(t);
    }
    Ok(out)
}

fn cmd_replay(cli: &Cli) -> Result<String, String> {
    let rps = opt_usize(cli, "rps", 200_000)? as u64;
    if rps == 0 {
        return Err("--rps must be at least 1".to_string());
    }
    let slots = opt_usize(cli, "slots", 3)?;
    if slots == 0 {
        return Err("--slots must be at least 1".to_string());
    }
    let threads = if cli.options.contains_key("sweep") {
        vec![1, 2, 4, 8]
    } else {
        parse_thread_list(
            cli.options
                .get("threads")
                .map(String::as_str)
                .unwrap_or("2"),
        )?
    };
    // An explicit floor (req/s) turns the bench into a pass/fail gate;
    // the default 0 only reports. CI passes a conservative floor so
    // shared-runner noise cannot flake the job.
    let floor = opt_f64(cli, "floor", 0.0)?;

    let s = serve_bench::study(&threads, slots, rps);
    let output = if cli.options.contains_key("json") {
        serde_json::to_string_pretty(&serve_study_to_json(&s)).map_err(|e| e.to_string())?
    } else {
        serve_bench::render(&s)
    };
    // The artifact lands on disk before the gates run, so CI can archive
    // the numbers of a failing run.
    if let Some(path) = cli.options.get("out").filter(|p| !p.is_empty()) {
        let json =
            serde_json::to_string_pretty(&serve_study_to_json(&s)).map_err(|e| e.to_string())?;
        fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    }

    if !s.thread_invariant {
        return Err("replay: routed/shed totals drifted across thread counts".to_string());
    }
    if !s.all_swaps_reconcile() {
        return Err("replay: swap counters failed to reconcile with the slot count".to_string());
    }
    if s.worst_mix_divergence() > REPLAY_MIX_CEILING {
        return Err(format!(
            "replay: routing mix diverged {:.4} from the plan's fractions (ceiling {REPLAY_MIX_CEILING})",
            s.worst_mix_divergence()
        ));
    }
    if s.drift.drift_replans < 1 {
        return Err(format!(
            "replay: scripted mid-slot shift went undetected ({} checks)",
            s.drift.drift_checks
        ));
    }
    if !s.drift.drop_free {
        return Err("replay: hot swaps dropped requests during the drift run".to_string());
    }
    if floor > 0.0 && s.peak_routed_per_second() < floor {
        return Err(format!(
            "replay: peak throughput {:.0} req/s below the {floor:.0} req/s floor",
            s.peak_routed_per_second()
        ));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(parts: &[&str]) -> Cli {
        let args: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        parse_args(&args).unwrap()
    }

    #[test]
    fn parse_extracts_options_and_positionals() {
        let c = cli(&["run", "--system", "s.json", "--json", "--start", "3"]);
        assert_eq!(c.command, "run");
        assert_eq!(c.options.get("system").unwrap(), "s.json");
        assert_eq!(c.options.get("start").unwrap(), "3");
        assert_eq!(c.options.get("json").unwrap(), "");
        let t = cli(&["preset", "section_v"]);
        assert_eq!(t.positional, vec!["section_v"]);
    }

    #[test]
    fn parse_rejects_empty() {
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn preset_round_trips_through_json() {
        let out = execute(&cli(&["preset", "section_vii"])).unwrap();
        let system: System = serde_json::from_str(&out).unwrap();
        system.validate().unwrap();
        assert_eq!(system.num_dcs(), 2);
        assert_eq!(system.classes[0].tuf.num_levels(), 2);
    }

    #[test]
    fn unknown_preset_is_an_error() {
        assert!(execute(&cli(&["preset", "section_ix"])).is_err());
    }

    #[test]
    fn trace_command_generates_json() {
        let out = execute(&cli(&[
            "trace",
            "diurnal",
            "--slots",
            "6",
            "--front-ends",
            "2",
            "--classes",
            "2",
            "--peak",
            "1000",
        ]))
        .unwrap();
        let trace: Trace = serde_json::from_str(&out).unwrap();
        assert_eq!(
            (trace.slots(), trace.front_ends(), trace.classes()),
            (6, 2, 2)
        );
    }

    #[test]
    fn policies_parse() {
        assert_eq!(make_policy("optimized").unwrap().name(), "Optimized");
        assert_eq!(make_policy("balanced").unwrap().name(), "Balanced");
        assert_eq!(make_policy("resilient").unwrap().name(), "Resilient");
        assert_eq!(
            make_policy("quantile=0.9").unwrap().name(),
            "OptimizedQuantile"
        );
        assert!(make_policy("quantile=1.5").is_err());
        assert!(make_policy("greedy").is_err());
    }

    #[test]
    fn solver_flag_parses() {
        for (name, kind) in [
            ("exact", SolverKind::Exact),
            ("anytime", SolverKind::Anytime),
            ("portfolio", SolverKind::Portfolio),
        ] {
            let cfg = parse_solver_config(name, 2, Some(250), EngineKind::Sparse)
                .unwrap()
                .unwrap();
            assert_eq!(cfg.kind, kind, "{name}");
            assert_eq!(cfg.threads, 2, "{name}");
            assert_eq!(cfg.budget.wall_clock_ms, Some(250), "{name}");
            assert!(matches!(cfg.lp.engine, EngineKind::Sparse), "{name}");
        }
        assert!(parse_solver_config("uniform", 1, None, EngineKind::Auto)
            .unwrap()
            .is_none());
        let err = parse_solver_config("cplex", 1, None, EngineKind::Auto).unwrap_err();
        assert!(err.contains("--solver"), "{err}");
    }

    #[test]
    fn solver_flag_builds_policies_or_rejects_them() {
        for solver in ["exact", "anytime", "portfolio", "uniform"] {
            let p = make_policy_solver("optimized", solver, 1, Some(100), EngineKind::Auto);
            assert_eq!(p.unwrap().name(), "Optimized", "{solver}");
        }
        for solver in ["exact", "anytime", "portfolio"] {
            let p = make_policy_solver("resilient", solver, 1, None, EngineKind::Auto);
            assert_eq!(p.unwrap().name(), "Resilient", "{solver}");
        }
        // The uniform heuristic has no solver ladder; balanced and
        // quantile pin their own solver, so a non-default selection is
        // an error, not a silent ignore.
        assert!(make_policy_solver("resilient", "uniform", 1, None, EngineKind::Auto).is_err());
        assert!(make_policy_solver("balanced", "anytime", 1, None, EngineKind::Auto).is_err());
        assert!(make_policy_solver("balanced", "exact", 1, Some(9), EngineKind::Auto).is_err());
        assert!(
            make_policy_solver("quantile=0.9", "portfolio", 1, None, EngineKind::Auto).is_err()
        );
        // ... while the defaults keep working for every policy.
        assert!(make_policy_solver("balanced", "exact", 1, None, EngineKind::Auto).is_ok());
        assert!(make_policy_solver("quantile=0.9", "exact", 1, None, EngineKind::Auto).is_ok());
    }

    #[test]
    fn lp_engine_flag_parses() {
        assert!(matches!(parse_engine("auto"), Ok(EngineKind::Auto)));
        assert!(matches!(parse_engine("dense"), Ok(EngineKind::Dense)));
        assert!(matches!(parse_engine("sparse"), Ok(EngineKind::Sparse)));
        let err = parse_engine("simplex").unwrap_err();
        assert!(err.contains("--lp-engine"), "{err}");
        for spec in ["optimized", "resilient", "quantile=0.9", "balanced"] {
            for engine in [EngineKind::Dense, EngineKind::Sparse] {
                assert!(make_policy_opts(spec, 1, engine).is_ok(), "{spec}");
            }
        }
    }

    #[test]
    fn metrics_flag_writes_prometheus_and_jsonl_exports() {
        let dir = std::env::temp_dir().join("palb_cli_metrics_test");
        fs::create_dir_all(&dir).unwrap();
        let sys_path = dir.join("sys.json");
        let trace_path = dir.join("trace.json");
        let prom_path = dir.join("out.prom");
        let jsonl_path = dir.join("out.jsonl");
        fs::write(
            &sys_path,
            execute(&cli(&["preset", "section_vii"])).unwrap(),
        )
        .unwrap();
        let trace = Trace::single_slot(vec![vec![30_000.0, 25_000.0]]);
        fs::write(&trace_path, serde_json::to_string(&trace).unwrap()).unwrap();

        execute(&cli(&[
            "run",
            "--system",
            sys_path.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
            "--policy",
            "resilient",
            "--start",
            "14",
            "--json",
            "--metrics",
            prom_path.to_str().unwrap(),
        ]))
        .unwrap();
        let prom = fs::read_to_string(&prom_path).unwrap();
        // The acceptance families, in valid exposition format.
        assert!(prom.contains("# TYPE palb_slot_decide_seconds histogram"));
        assert!(prom.contains("palb_slot_decide_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("# TYPE palb_bb_nodes_total counter"));
        assert!(prom.contains("palb_warm_hits_total"));
        assert!(prom.contains("palb_tier_decisions_total{tier=\"exact\"} 1"));
        assert!(prom.contains("palb_slots_total 1"));

        execute(&cli(&[
            "run",
            "--system",
            sys_path.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
            "--policy",
            "resilient",
            "--start",
            "14",
            "--json",
            "--metrics",
            jsonl_path.to_str().unwrap(),
            "--metrics-format",
            "jsonl",
        ]))
        .unwrap();
        let jsonl = fs::read_to_string(&jsonl_path).unwrap();
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["name"].is_string());
        }
        assert!(jsonl.contains("\"name\":\"palb_bb_nodes_total\""));
    }

    #[test]
    fn metrics_format_is_validated() {
        let err = execute(&cli(&[
            "run",
            "--system",
            "s.json",
            "--trace",
            "t.json",
            "--metrics",
            "out.prom",
            "--metrics-format",
            "xml",
        ]))
        .unwrap_err();
        // The system file is missing too, but format validation should not
        // depend on file loading order succeeding first — accept either
        // error as long as a bad format never silently passes.
        assert!(
            err.contains("metrics-format") || err.contains("s.json"),
            "{err}"
        );
    }

    #[test]
    fn solver_threads_flag_parses_and_validates() {
        assert_eq!(
            make_policy_with("optimized", 4).unwrap().name(),
            "Optimized"
        );
        let err = make_policy_with("optimized", 0)
            .err()
            .expect("0 threads rejected");
        assert!(err.contains("solver-threads"), "{err}");
        let c = cli(&["run", "--solver-threads", "2", "--system", "s.json"]);
        assert_eq!(c.options.get("solver-threads").unwrap(), "2");
    }

    #[test]
    fn end_to_end_run_from_temp_files() {
        let dir = std::env::temp_dir().join("palb_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let sys_path = dir.join("sys.json");
        let trace_path = dir.join("trace.json");

        let system_json = execute(&cli(&["preset", "section_v"])).unwrap();
        fs::write(&sys_path, &system_json).unwrap();
        let trace = Trace::single_slot(presets::section_v_low_arrivals());
        fs::write(&trace_path, serde_json::to_string(&trace).unwrap()).unwrap();

        let out = execute(&cli(&[
            "run",
            "--system",
            sys_path.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
            "--policy",
            "optimized",
            "--json",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["policy"], "Optimized");
        assert!(v["total_net_profit"].as_f64().unwrap() > 0.0);

        // `--lp-engine` is accepted end to end, and the forced engines are
        // bitwise-identical, so the JSON summaries match character for
        // character.
        let run_with_engine = |engine: &str| {
            execute(&cli(&[
                "run",
                "--system",
                sys_path.to_str().unwrap(),
                "--trace",
                trace_path.to_str().unwrap(),
                "--policy",
                "optimized",
                "--json",
                "--lp-engine",
                engine,
            ]))
            .unwrap()
        };
        assert_eq!(run_with_engine("dense"), run_with_engine("sparse"));
        assert_eq!(run_with_engine("dense"), out);

        // And the LP export is parseable LP format.
        let lp = execute(&cli(&[
            "lp",
            "--system",
            sys_path.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
            "--slot",
            "0",
        ]))
        .unwrap();
        assert!(lp.starts_with("Maximize"));
        assert!(lp.contains("Subject To"));
        assert!(lp.ends_with("End\n"));
    }

    #[test]
    fn fault_tolerance_command_prints_tier_histogram() {
        let out = execute(&cli(&[
            "fault-tolerance",
            "--fault-rate",
            "0.1",
            "--seed",
            "42",
        ]))
        .unwrap();
        assert!(out.contains("profit retention"), "{out}");
        assert!(out.contains("tier histogram"), "{out}");
        assert!(out.contains("exact"), "{out}");
        assert!(out.contains("24"), "{out}");
    }

    #[test]
    fn fault_tolerance_rejects_bad_rate() {
        let err = execute(&cli(&["fault-tolerance", "--fault-rate", "1.5"])).unwrap_err();
        assert!(err.contains("probability"), "{err}");
        assert!(execute(&cli(&["fault-tolerance", "--fault-rate", "nope"])).is_err());
    }

    #[test]
    fn solver_perf_command_reports_speedup() {
        let out = execute(&cli(&["solver-perf", "--servers", "2"])).unwrap();
        assert!(out.contains("overall speedup"), "{out}");
        assert!(
            out.contains("bitwise-identical across modes: true"),
            "{out}"
        );
    }

    #[test]
    fn solver_perf_rejects_bad_servers() {
        let err = execute(&cli(&["solver-perf", "--servers", "1"])).unwrap_err();
        assert!(err.contains("[2,8]"), "{err}");
        assert!(execute(&cli(&["solver-perf", "--servers", "nope"])).is_err());
    }

    #[test]
    fn stress_scenarios_parse_and_share_fault_validation() {
        let all = stress_scenarios(&cli(&["stress"]), 1).unwrap();
        assert!(all.len() >= 6);
        let one = stress_scenarios(&cli(&["stress", "--scenario", "price_shock"]), 1).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name(), "price_shock");
        let err = stress_scenarios(&cli(&["stress", "--scenario", "nope"]), 1).unwrap_err();
        assert!(err.contains("one of:"), "{err}");
        // The overlay is rejected by the same boundary check library
        // callers hit, with the structured field name in the message.
        let err = stress_scenarios(&cli(&["stress", "--nan-rate", "1.5"]), 1).unwrap_err();
        assert!(err.contains("nan_burst_prob"), "{err}");
        let with = stress_scenarios(
            &cli(&["stress", "--scenario", "dc_outage", "--nan-rate", "0.05"]),
            1,
        )
        .unwrap();
        let last = with[0].perturbations().last().unwrap();
        assert_eq!(last.name(), "rate_faults");
    }

    #[test]
    fn stress_command_writes_artifact_and_gates_against_baseline() {
        let dir = std::env::temp_dir().join("palb_cli_stress_test");
        fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("scorecard.json");
        let out = execute(&cli(&[
            "stress",
            "--scenario",
            "price_shock",
            "--solver-threads",
            "1",
            "--out",
            out_path.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["cells"].as_array().unwrap().len(), 5);
        assert!(v["resilient_floor"].as_f64().unwrap() >= 0.8);
        assert_eq!(v["lp_engine"], "auto");

        // Forcing an engine is invisible to the scorecard — same cells
        // bit for bit — with the choice recorded in the artifact.
        let sparse = execute(&cli(&[
            "stress",
            "--scenario",
            "price_shock",
            "--solver-threads",
            "1",
            "--lp-engine",
            "sparse",
            "--json",
        ]))
        .unwrap();
        let sv: serde_json::Value = serde_json::from_str(&sparse).unwrap();
        assert_eq!(sv["lp_engine"], "sparse");
        assert_eq!(sv["cells"], v["cells"]);
        // A bad engine value is rejected before any matrix runs.
        let err = execute(&cli(&["stress", "--lp-engine", "simplex"])).unwrap_err();
        assert!(err.contains("--lp-engine"), "{err}");

        // The written artifact doubles as a clean baseline for the same
        // seed: the deterministic matrix reproduces it exactly.
        let again = execute(&cli(&[
            "stress",
            "--scenario",
            "price_shock",
            "--solver-threads",
            "1",
            "--baseline",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(again.contains("price_shock"), "{again}");

        // A perturbed baseline trips the drift gate.
        let mut drifted: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(&out_path).unwrap()).unwrap();
        let cur = drifted["cells"][0]["retention"].as_f64().unwrap();
        drifted["cells"][0]["retention"] = serde_json::json!(cur + 0.01);
        let bad = dir.join("drifted.json");
        fs::write(&bad, serde_json::to_string(&drifted).unwrap()).unwrap();
        let err = execute(&cli(&[
            "stress",
            "--scenario",
            "price_shock",
            "--solver-threads",
            "1",
            "--baseline",
            bad.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("drift"), "{err}");
    }

    #[test]
    fn replay_thread_list_parses() {
        assert_eq!(parse_thread_list("2").unwrap(), vec![2]);
        assert_eq!(parse_thread_list("1,2,4,8").unwrap(), vec![1, 2, 4, 8]);
        assert_eq!(parse_thread_list(" 1, 2 ").unwrap(), vec![1, 2]);
        assert!(parse_thread_list("0").is_err());
        assert!(parse_thread_list("x").is_err());
        assert!(parse_thread_list("").is_err());
        assert!(parse_thread_list("1,,2").is_err());
    }

    #[test]
    fn replay_command_runs_gates_and_exports_artifact() {
        let dir = std::env::temp_dir().join("palb_cli_replay_test");
        fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("BENCH_serve.json");
        let out = execute(&cli(&[
            "replay",
            "--rps",
            "30000",
            "--slots",
            "2",
            "--threads",
            "1,2",
            "--json",
            "--out",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["slots"], 2);
        assert_eq!(v["sweep"].as_array().unwrap().len(), 2);
        assert!(v["peak_routed_per_second"].as_f64().unwrap() > 0.0);
        assert!(v["thread_invariant"].as_bool().unwrap());
        assert!(v["all_swaps_reconcile"].as_bool().unwrap());
        assert!(v["drift"]["drop_free"].as_bool().unwrap());
        assert!(v["drift"]["drift_replans"].as_u64().unwrap() >= 1);
        // The exported artifact is the same document.
        let disk: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(disk, v);
        // An absurd floor turns the same healthy run into a gate failure.
        let err = execute(&cli(&[
            "replay",
            "--rps",
            "30000",
            "--slots",
            "2",
            "--threads",
            "1",
            "--floor",
            "1e15",
        ]))
        .unwrap_err();
        assert!(err.contains("floor"), "{err}");
    }

    #[test]
    fn replay_rejects_nonsense_before_running() {
        assert!(execute(&cli(&["replay", "--rps", "0"])).is_err());
        assert!(execute(&cli(&["replay", "--slots", "0"])).is_err());
        assert!(execute(&cli(&["replay", "--threads", "0"])).is_err());
        assert!(execute(&cli(&["replay", "--threads", "nope"])).is_err());
        assert!(execute(&cli(&["replay", "--rps", "many"])).is_err());
    }

    #[test]
    fn incompatible_trace_is_rejected() {
        let dir = std::env::temp_dir().join("palb_cli_test2");
        fs::create_dir_all(&dir).unwrap();
        let sys_path = dir.join("sys.json");
        let trace_path = dir.join("trace.json");
        fs::write(&sys_path, execute(&cli(&["preset", "section_v"])).unwrap()).unwrap();
        let trace = Trace::single_slot(vec![vec![1.0]]); // wrong shape
        fs::write(&trace_path, serde_json::to_string(&trace).unwrap()).unwrap();
        let err = execute(&cli(&[
            "run",
            "--system",
            sys_path.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("front-ends x classes"), "{err}");
    }
}
