//! The paper's closed-form level selector (Eqs. 25–26).
//!
//! To express "U equals the utility of integer level x ∈ {1..n}" in a form a
//! continuous solver accepts, the paper interpolates the level utilities
//! with the degree-(n−1) Lagrange polynomial through the nodes
//! `(q, U_q), q = 1..n`:
//!
//! ```text
//!   U(x) = Σᵢ U_i · Lᵢ(x),   Lᵢ(x) = Π_{j≠i} (x − j) / (i − j)
//! ```
//!
//! At integer `x = q` this evaluates exactly to `U_q`. The paper writes the
//! denominator in factorial form, `Π_{j≠i}(i − j) = (−1)^{n−i}·(i−1)!·(n−i)!`,
//! which this module also implements and cross-checks.

use crate::step::StepTuf;

/// Evaluates the Lagrange basis polynomial `Lᵢ(x)` over nodes `1..=n`
/// (1-based `i`).
pub fn lagrange_basis(n: usize, i: usize, x: f64) -> f64 {
    assert!(n >= 1 && (1..=n).contains(&i), "basis index out of range");
    let mut num = 1.0;
    for j in 1..=n {
        if j != i {
            num *= x - j as f64;
        }
    }
    num / denominator_direct(n, i)
}

/// `Π_{j≠i} (i − j)` computed directly.
fn denominator_direct(n: usize, i: usize) -> f64 {
    let mut den = 1.0;
    for j in 1..=n {
        if j != i {
            den *= (i as f64) - (j as f64);
        }
    }
    den
}

/// `Π_{j≠i} (i − j)` in the paper's factorial form:
/// `(−1)^{n−i} · (i−1)! · (n−i)!`.
pub fn denominator_factorial(n: usize, i: usize) -> f64 {
    let sign = if (n - i) % 2 == 0 { 1.0 } else { -1.0 };
    sign * factorial(i - 1) * factorial(n - i)
}

fn factorial(k: usize) -> f64 {
    (1..=k).map(|v| v as f64).product()
}

/// The paper's Eq. 26: utility as a polynomial in the integer level
/// variable `x ∈ [1, n]` (Eq. 25). Exact at integer levels, smooth between.
pub fn utility_polynomial(tuf: &StepTuf, x: f64) -> f64 {
    let n = tuf.num_levels();
    (1..=n)
        .map(|i| tuf.utility_of_level(i) * lagrange_basis(n, i, x))
        .sum()
}

/// Rounds a relaxed level variable back to the nearest valid integer level
/// and returns `(level, utility)`.
pub fn snap_level(tuf: &StepTuf, x: f64) -> (usize, f64) {
    let n = tuf.num_levels();
    let q = x.round().clamp(1.0, n as f64) as usize;
    (q, tuf.utility_of_level(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::{Level, StepTuf};

    fn tuf(n: usize) -> StepTuf {
        let levels = (1..=n)
            .map(|q| Level {
                deadline: q as f64 * 0.25,
                utility: (n + 1 - q) as f64 * 7.0 + (q as f64).sin().abs(),
            })
            .collect();
        StepTuf::new(levels).unwrap()
    }

    #[test]
    fn basis_is_kronecker_delta_at_nodes() {
        for n in 1..=6 {
            for i in 1..=n {
                for q in 1..=n {
                    let v = lagrange_basis(n, i, q as f64);
                    let expect = if i == q { 1.0 } else { 0.0 };
                    assert!((v - expect).abs() < 1e-9, "L_{i}({q}) over n={n} was {v}");
                }
            }
        }
    }

    #[test]
    fn factorial_denominator_matches_direct_product() {
        for n in 1..=8 {
            for i in 1..=n {
                let d = denominator_direct(n, i);
                let f = denominator_factorial(n, i);
                assert!(
                    (d - f).abs() < 1e-9 * (1.0 + d.abs()),
                    "n={n} i={i}: direct {d} vs factorial {f}"
                );
            }
        }
    }

    #[test]
    fn polynomial_reproduces_level_utilities() {
        for n in 1..=5 {
            let t = tuf(n);
            for q in 1..=n {
                let u = utility_polynomial(&t, q as f64);
                assert!(
                    (u - t.utility_of_level(q)).abs() < 1e-8,
                    "U({q}) = {u} != {}",
                    t.utility_of_level(q)
                );
            }
        }
    }

    #[test]
    fn basis_partition_of_unity() {
        // Σᵢ Lᵢ(x) = 1 for any x (interpolating the constant 1 exactly).
        for n in 1..=6 {
            for step in 0..20 {
                let x = 1.0 + (n as f64 - 1.0) * step as f64 / 19.0;
                let s: f64 = (1..=n).map(|i| lagrange_basis(n, i, x)).sum();
                assert!((s - 1.0).abs() < 1e-8, "n={n} x={x}: sum {s}");
            }
        }
    }

    #[test]
    fn snap_level_clamps_and_rounds() {
        let t = tuf(3);
        assert_eq!(snap_level(&t, 0.2).0, 1);
        assert_eq!(snap_level(&t, 1.4).0, 1);
        assert_eq!(snap_level(&t, 1.6).0, 2);
        assert_eq!(snap_level(&t, 9.0).0, 3);
        let (q, u) = snap_level(&t, 2.0);
        assert_eq!(u, t.utility_of_level(q));
    }
}
