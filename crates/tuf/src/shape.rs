//! The TUF shape families of the paper's Fig. 3: (a) constant-until-deadline,
//! (b) monotone non-increasing, (c) multi-level step-downward — plus
//! conversions showing the paper's claim that (a) and (b) are special or
//! limiting cases of (c).

use crate::step::{StepTuf, TufError};

/// A time-utility function of any of the paper's Fig. 3 shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum Tuf {
    /// Fig. 3(a): constant value before the deadline.
    Constant {
        /// Utility before the deadline.
        utility: f64,
        /// Hard deadline.
        deadline: f64,
    },
    /// Fig. 3(b): linear decay from `u0` at t=0 to `u_end` at the deadline.
    LinearDecay {
        /// Utility at zero delay.
        u0: f64,
        /// Utility just before the deadline (`0 ≤ u_end < u0`).
        u_end: f64,
        /// Hard deadline.
        deadline: f64,
    },
    /// Fig. 3(c): multi-level step-downward.
    Step(StepTuf),
}

impl Tuf {
    /// Evaluates the utility of completing with (mean) delay `r`.
    pub fn eval(&self, r: f64) -> f64 {
        match self {
            Tuf::Constant { utility, deadline } => {
                if r <= *deadline {
                    *utility
                } else {
                    0.0
                }
            }
            Tuf::LinearDecay {
                u0,
                u_end,
                deadline,
            } => {
                if r <= 0.0 {
                    *u0
                } else if r <= *deadline {
                    u0 + (u_end - u0) * r / deadline
                } else {
                    0.0
                }
            }
            Tuf::Step(s) => s.eval(r),
        }
    }

    /// Hard deadline beyond which utility is 0.
    pub fn deadline(&self) -> f64 {
        match self {
            Tuf::Constant { deadline, .. } | Tuf::LinearDecay { deadline, .. } => *deadline,
            Tuf::Step(s) => s.final_deadline(),
        }
    }

    /// Converts any shape into an equivalent/approximating step TUF — the
    /// paper's argument that step-downward TUFs "represent a wide range of
    /// scenarios". `resolution` is the number of steps used for smooth
    /// shapes (ignored for shapes that are already steps).
    pub fn to_step(&self, resolution: usize) -> Result<StepTuf, TufError> {
        match self {
            Tuf::Constant { utility, deadline } => StepTuf::constant(*utility, *deadline),
            Tuf::LinearDecay {
                u0,
                u_end,
                deadline,
            } => {
                StepTuf::from_monotone(|r| u0 + (u_end - u0) * r / deadline, *deadline, resolution)
            }
            Tuf::Step(s) => Ok(s.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_shape_eval() {
        let t = Tuf::Constant {
            utility: 5.0,
            deadline: 1.0,
        };
        assert_eq!(t.eval(0.5), 5.0);
        assert_eq!(t.eval(1.5), 0.0);
        assert_eq!(t.deadline(), 1.0);
    }

    #[test]
    fn linear_decay_interpolates() {
        let t = Tuf::LinearDecay {
            u0: 10.0,
            u_end: 2.0,
            deadline: 2.0,
        };
        assert_eq!(t.eval(0.0), 10.0);
        assert!((t.eval(1.0) - 6.0).abs() < 1e-12);
        assert!((t.eval(2.0) - 2.0).abs() < 1e-12);
        assert_eq!(t.eval(2.1), 0.0);
    }

    #[test]
    fn constant_to_step_is_one_level() {
        let t = Tuf::Constant {
            utility: 5.0,
            deadline: 1.0,
        };
        let s = t.to_step(8).unwrap();
        assert_eq!(s.num_levels(), 1);
        assert_eq!(s.eval(0.7), 5.0);
    }

    #[test]
    fn decay_to_step_underestimates_smoothly() {
        let t = Tuf::LinearDecay {
            u0: 10.0,
            u_end: 1.0,
            deadline: 1.0,
        };
        let s = t.to_step(20).unwrap();
        // Step approximation is conservative and converges from below.
        for i in 1..100 {
            let r = i as f64 / 100.0;
            assert!(s.eval(r) <= t.eval(r) + 1e-9);
            assert!(t.eval(r) - s.eval(r) <= 10.0 / 20.0 + 1e-9);
        }
    }

    #[test]
    fn step_round_trips() {
        let s = StepTuf::two_level(8.0, 0.4, 3.0, 1.0).unwrap();
        let t = Tuf::Step(s.clone());
        assert_eq!(t.to_step(99).unwrap(), s);
        assert_eq!(t.eval(0.9), 3.0);
    }
}
