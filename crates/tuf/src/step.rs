//! Multi-level step-downward time-utility functions (paper §III-B1).
//!
//! A step TUF is a non-increasing piecewise-constant map from response time
//! to revenue: finishing within sub-deadline `D_1` earns `U_1`, within
//! `(D_1, D_2]` earns `U_2 < U_1`, …, and beyond the final deadline earns 0.
//! The paper treats this family as universal: a constant TUF is a one-level
//! step, and any monotone non-increasing TUF is the limit of many steps.

/// One utility level: completing with mean delay `R ≤ deadline` (and above
/// the previous level's deadline) yields `utility`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Level {
    /// Relative (sub-)deadline for this level, in the same time unit as
    /// delays (hours throughout the workspace).
    pub deadline: f64,
    /// Dollar utility earned per request when this level is met.
    pub utility: f64,
}

/// Errors from [`StepTuf::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TufError {
    /// No levels supplied.
    Empty,
    /// Deadlines must be strictly increasing and positive.
    BadDeadlines,
    /// Utilities must be strictly decreasing and positive.
    BadUtilities,
    /// A value was NaN or infinite.
    NonFinite,
}

impl std::fmt::Display for TufError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TufError::Empty => write!(f, "a step TUF needs at least one level"),
            TufError::BadDeadlines => {
                write!(f, "sub-deadlines must be positive and strictly increasing")
            }
            TufError::BadUtilities => {
                write!(f, "utilities must be positive and strictly decreasing")
            }
            TufError::NonFinite => write!(f, "TUF values must be finite"),
        }
    }
}

impl std::error::Error for TufError {}

/// A validated multi-level step-downward TUF.
///
/// Serializes as its level array; deserialization re-validates, so a
/// hand-edited JSON system file cannot smuggle in a malformed TUF.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(try_from = "Vec<Level>", into = "Vec<Level>")]
pub struct StepTuf {
    levels: Vec<Level>,
}

impl TryFrom<Vec<Level>> for StepTuf {
    type Error = TufError;
    fn try_from(levels: Vec<Level>) -> Result<Self, TufError> {
        StepTuf::new(levels)
    }
}

impl From<StepTuf> for Vec<Level> {
    fn from(t: StepTuf) -> Vec<Level> {
        t.levels
    }
}

impl StepTuf {
    /// Builds a step TUF from levels ordered best-first.
    ///
    /// Validation enforces the paper's assumptions: positive strictly
    /// increasing deadlines `D_1 < D_2 < … < D_n` and positive strictly
    /// decreasing utilities `U_1 > U_2 > … > U_n`.
    pub fn new(levels: Vec<Level>) -> Result<Self, TufError> {
        if levels.is_empty() {
            return Err(TufError::Empty);
        }
        for l in &levels {
            if !l.deadline.is_finite() || !l.utility.is_finite() {
                return Err(TufError::NonFinite);
            }
        }
        if levels[0].deadline <= 0.0 {
            return Err(TufError::BadDeadlines);
        }
        if levels[0].utility <= 0.0 {
            return Err(TufError::BadUtilities);
        }
        for w in levels.windows(2) {
            if w[1].deadline <= w[0].deadline {
                return Err(TufError::BadDeadlines);
            }
            if w[1].utility >= w[0].utility || w[1].utility <= 0.0 {
                return Err(TufError::BadUtilities);
            }
        }
        Ok(StepTuf { levels })
    }

    /// One-level (constant-value) TUF: `utility` until `deadline`, then 0.
    /// This is the paper's Eq. 9.
    pub fn constant(utility: f64, deadline: f64) -> Result<Self, TufError> {
        Self::new(vec![Level { deadline, utility }])
    }

    /// Two-level TUF (the paper's Eq. 10).
    pub fn two_level(u1: f64, d1: f64, u2: f64, d2: f64) -> Result<Self, TufError> {
        Self::new(vec![
            Level {
                deadline: d1,
                utility: u1,
            },
            Level {
                deadline: d2,
                utility: u2,
            },
        ])
    }

    /// Number of levels `n`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Levels, best-first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The final (hard) deadline `D_k`; beyond this, utility is 0 and
    /// executing the request is "meaningless" per the paper.
    pub fn final_deadline(&self) -> f64 {
        // palb:allow(unwrap): StepTuf construction rejects empty level lists
        self.levels.last().unwrap().deadline
    }

    /// The top utility `U_1`.
    pub fn max_utility(&self) -> f64 {
        self.levels[0].utility
    }

    /// Evaluates the TUF at mean delay `r` (Eq. 9/10/16): the utility of the
    /// first level whose deadline is ≥ `r`, or 0 past the final deadline.
    /// Non-positive delays earn the top level (instantaneous completion).
    pub fn eval(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return self.levels[0].utility;
        }
        for l in &self.levels {
            if r <= l.deadline {
                return l.utility;
            }
        }
        0.0
    }

    /// The utility of level `q` (1-based, matching the paper's `U_{k,q}`).
    ///
    /// # Panics
    /// Panics if `q == 0` or `q > n`.
    pub fn utility_of_level(&self, q: usize) -> f64 {
        self.levels[q - 1].utility
    }

    /// The sub-deadline of level `q` (1-based, `D_{k,q}`).
    ///
    /// # Panics
    /// Panics if `q == 0` or `q > n`.
    pub fn deadline_of_level(&self, q: usize) -> f64 {
        self.levels[q - 1].deadline
    }

    /// Index (1-based) of the level earned at delay `r`, or `None` past the
    /// final deadline.
    pub fn level_at(&self, r: f64) -> Option<usize> {
        if r <= 0.0 {
            return Some(1);
        }
        self.levels
            .iter()
            .position(|l| r <= l.deadline)
            .map(|i| i + 1)
    }

    /// Discretizes a monotone non-increasing function `f` on `(0, deadline]`
    /// into an `n`-level step TUF (the paper's observation that smooth
    /// non-increasing TUFs are limits of step TUFs). Sampling is conservative:
    /// each step uses the function value at its own deadline, so the step TUF
    /// never over-promises utility.
    pub fn from_monotone(
        f: impl Fn(f64) -> f64,
        deadline: f64,
        n: usize,
    ) -> Result<Self, TufError> {
        if n == 0 || !(deadline > 0.0) {
            return Err(TufError::Empty);
        }
        let mut levels = Vec::with_capacity(n);
        for q in 1..=n {
            let d = deadline * q as f64 / n as f64;
            levels.push(Level {
                deadline: d,
                utility: f(d),
            });
        }
        // Collapse equal-utility neighbours to keep levels strictly
        // decreasing (keeps the *latest* deadline of a run, preserving value).
        let mut compact: Vec<Level> = Vec::with_capacity(levels.len());
        for l in levels {
            match compact.last_mut() {
                Some(last) if (last.utility - l.utility).abs() < 1e-12 => {
                    last.deadline = l.deadline;
                }
                _ => compact.push(l),
            }
        }
        Self::new(compact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two() -> StepTuf {
        StepTuf::two_level(10.0, 0.5, 4.0, 1.0).unwrap()
    }

    #[test]
    fn constant_tuf_is_single_step() {
        let t = StepTuf::constant(10.0, 2.0).unwrap();
        assert_eq!(t.num_levels(), 1);
        assert_eq!(t.eval(1.9), 10.0);
        assert_eq!(t.eval(2.0), 10.0);
        assert_eq!(t.eval(2.1), 0.0);
    }

    #[test]
    fn two_level_eval_matches_eq10() {
        let t = two();
        assert_eq!(t.eval(0.2), 10.0); // 0 < R <= D1
        assert_eq!(t.eval(0.5), 10.0); // boundary inclusive
        assert_eq!(t.eval(0.7), 4.0); // D1 < R <= D
        assert_eq!(t.eval(1.0), 4.0);
        assert_eq!(t.eval(1.5), 0.0); // R > D
    }

    #[test]
    fn zero_or_negative_delay_earns_top_level() {
        let t = two();
        assert_eq!(t.eval(0.0), 10.0);
        assert_eq!(t.eval(-1.0), 10.0);
    }

    #[test]
    fn level_indexing_is_one_based() {
        let t = two();
        assert_eq!(t.utility_of_level(1), 10.0);
        assert_eq!(t.utility_of_level(2), 4.0);
        assert_eq!(t.deadline_of_level(1), 0.5);
        assert_eq!(t.level_at(0.3), Some(1));
        assert_eq!(t.level_at(0.8), Some(2));
        assert_eq!(t.level_at(3.0), None);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert_eq!(StepTuf::new(vec![]), Err(TufError::Empty));
        assert_eq!(
            StepTuf::two_level(10.0, 1.0, 4.0, 0.5),
            Err(TufError::BadDeadlines)
        );
        assert_eq!(
            StepTuf::two_level(4.0, 0.5, 10.0, 1.0),
            Err(TufError::BadUtilities)
        );
        assert_eq!(StepTuf::constant(-1.0, 1.0), Err(TufError::BadUtilities));
        assert_eq!(StepTuf::constant(1.0, f64::NAN), Err(TufError::NonFinite));
    }

    #[test]
    fn final_deadline_and_max_utility() {
        let t = two();
        assert_eq!(t.final_deadline(), 1.0);
        assert_eq!(t.max_utility(), 10.0);
    }

    #[test]
    fn from_monotone_discretizes_decay() {
        // f(r) = 10 * (1 - r) on (0, 1]: strictly decreasing.
        let t = StepTuf::from_monotone(|r| 10.0 * (1.0 - r) + 1.0, 0.9, 5).unwrap();
        assert_eq!(t.num_levels(), 5);
        // Conservative: the step value never exceeds the smooth value.
        for i in 0..100 {
            let r = 0.009 * i as f64 + 0.001;
            assert!(t.eval(r) <= 10.0 * (1.0 - r) + 1.0 + 1e-9);
        }
    }

    #[test]
    fn from_monotone_collapses_flat_runs() {
        let t = StepTuf::from_monotone(|_| 5.0, 1.0, 4).unwrap();
        assert_eq!(t.num_levels(), 1);
        assert_eq!(t.final_deadline(), 1.0);
    }
}
