//! The paper's big-M transformation of step-downward TUFs (Eqs. 11–13 for
//! two levels, Eq. 17 for `n` levels).
//!
//! A step TUF makes the objective discontinuous in the mean delay `R`. The
//! paper's trick is to introduce the earned utility `U` as a decision
//! variable constrained to the level set `{U_1, …, U_n}` and to add a
//! constraint series that *forces* `U` to equal the level matching `R`:
//!
//! ```text
//!   (R − D_1)       + M·(U − U_1)                   ≤ 0
//!   (D_1 + δ − R)   + M·(U_2 − U)(U − U_3)          ≤ 0
//!   (R − D_2)       + M·(U_2 − U)(U − U_1)          ≤ 0
//!   …
//!   (D_{n−1} + δ − R) + M·(U_n − U)                 ≤ 0
//! ```
//!
//! With `M` large, each constraint is slack except the ones that pin `U` to
//! the correct level for the current `R`. This module materializes the
//! series as data so the nonlinear solver (`palb-nlp`) can evaluate the
//! residuals, and so tests can verify the paper's case analysis numerically.

use crate::step::StepTuf;

/// One constraint of the big-M series, of the form
/// `time_sign·(R − d) + M·Π(aᵢ·U + bᵢ) ≤ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct BigMConstraint {
    /// `+1.0` for `(R − d)` terms, `−1.0` for `(d − R)` terms.
    pub time_sign: f64,
    /// The deadline offset `d` (with `δ` already folded in for `(d − R)`
    /// style rows).
    pub d: f64,
    /// Linear factors in `U`: the product `Π (a·U + b)` multiplies `M`.
    pub u_factors: Vec<(f64, f64)>,
}

impl BigMConstraint {
    /// Residual value; the constraint is satisfied when this is `≤ 0`.
    pub fn residual(&self, r: f64, u: f64, big_m: f64) -> f64 {
        let prod: f64 = self.u_factors.iter().map(|&(a, b)| a * u + b).product();
        self.time_sign * (r - self.d) + big_m * prod
    }

    /// Whether the constraint holds at `(r, u)` within `tol`.
    pub fn satisfied(&self, r: f64, u: f64, big_m: f64, tol: f64) -> bool {
        self.residual(r, u, big_m) <= tol
    }
}

/// The complete big-M series for a step TUF (paper Eq. 17; Eqs. 12–13 are
/// the two-level specialization). `delta` is the paper's `δ`, "a constant
/// time value which is small enough".
pub fn constraint_series(tuf: &StepTuf, delta: f64) -> Vec<BigMConstraint> {
    let n = tuf.num_levels();
    let mut out = Vec::with_capacity(2 * n.saturating_sub(1));
    if n == 1 {
        // One-level TUFs need no series: the delay bound R ≤ D_1 in the
        // base formulation already pins the utility.
        return out;
    }
    let u = |q: usize| tuf.utility_of_level(q);
    let d = |q: usize| tuf.deadline_of_level(q);

    for q in 1..n {
        // "(R − D_q) + M·(U_q − U)(U − U_{q−1}) ≤ 0": for q = 1 the second
        // factor degenerates (no U_0), leaving (U − U_1).
        if q == 1 {
            out.push(BigMConstraint {
                time_sign: 1.0,
                d: d(1),
                u_factors: vec![(1.0, -u(1))],
            });
        } else {
            out.push(BigMConstraint {
                time_sign: 1.0,
                d: d(q),
                u_factors: vec![(-1.0, u(q)), (1.0, -u(q - 1))],
            });
        }
        // "(D_q + δ − R) + M·(U_{q+1} − U)(U − U_{q+2}) ≤ 0": for the last
        // row (q = n−1) the second factor degenerates (no U_{n+1}).
        if q == n - 1 {
            out.push(BigMConstraint {
                time_sign: -1.0,
                d: d(q) + delta,
                u_factors: vec![(-1.0, u(n))],
            });
        } else {
            out.push(BigMConstraint {
                time_sign: -1.0,
                d: d(q) + delta,
                u_factors: vec![(-1.0, u(q + 1)), (1.0, -u(q + 2))],
            });
        }
    }
    out
}

/// Checks whether `(r, u)` satisfies the whole series.
pub fn series_satisfied(series: &[BigMConstraint], r: f64, u: f64, big_m: f64, tol: f64) -> bool {
    series.iter().all(|c| c.satisfied(r, u, big_m, tol))
}

/// Picks a big-M value that provably dominates every time term for delays up
/// to `r_max`: the residual's time part is at most `r_max + D_n + δ`, while
/// the smallest nonzero `|Π factors|` is the least pairwise utility gap (or
/// its square for product rows). `M = slack_bound / min_gap · margin`.
pub fn recommended_big_m(tuf: &StepTuf, r_max: f64, delta: f64) -> f64 {
    let time_bound = r_max + tuf.final_deadline() + delta;
    let levels = tuf.levels();
    let mut min_gap = f64::INFINITY;
    for w in levels.windows(2) {
        min_gap = min_gap.min(w[0].utility - w[1].utility);
    }
    if !min_gap.is_finite() {
        return 1.0; // single level: unused
    }
    let min_prod = min_gap * min_gap.min(1.0);
    (time_bound / min_prod) * 10.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::StepTuf;

    fn three() -> StepTuf {
        StepTuf::new(vec![
            crate::step::Level {
                deadline: 0.2,
                utility: 30.0,
            },
            crate::step::Level {
                deadline: 0.5,
                utility: 18.0,
            },
            crate::step::Level {
                deadline: 1.0,
                utility: 6.0,
            },
        ])
        .unwrap()
    }

    const DELTA: f64 = 1e-4;

    /// Numerically replays the paper's case analysis: for every interval of
    /// R, exactly the matching level utility satisfies the series.
    fn assert_only_correct_level(tuf: &StepTuf, r: f64, expected_q: usize) {
        let series = constraint_series(tuf, DELTA);
        let m = recommended_big_m(tuf, 2.0, DELTA);
        for q in 1..=tuf.num_levels() {
            let u = tuf.utility_of_level(q);
            let ok = series_satisfied(&series, r, u, m, 1e-9);
            if q == expected_q {
                assert!(ok, "level {q} should satisfy the series at R = {r}");
            } else {
                assert!(!ok, "level {q} should violate the series at R = {r}");
            }
        }
    }

    #[test]
    fn two_level_series_pins_levels_eq11_to_13() {
        let tuf = StepTuf::two_level(10.0, 0.5, 4.0, 1.0).unwrap();
        assert_only_correct_level(&tuf, 0.3, 1); // R <= D1 -> U1 (Eq 13 forces)
        assert_only_correct_level(&tuf, 0.8, 2); // R > D1 -> U2 (Eq 12 forces)
    }

    #[test]
    fn three_level_series_pins_levels_eq17() {
        let tuf = three();
        assert_only_correct_level(&tuf, 0.1, 1);
        assert_only_correct_level(&tuf, 0.35, 2); // D1 < R <= D2 -> U2
        assert_only_correct_level(&tuf, 0.9, 3); // D2 < R <= D3 -> U3
    }

    #[test]
    fn series_size_matches_eq17_row_count() {
        // n levels -> 2(n−1) constraints.
        let tuf = three();
        assert_eq!(constraint_series(&tuf, DELTA).len(), 4);
        let two = StepTuf::two_level(10.0, 0.5, 4.0, 1.0).unwrap();
        assert_eq!(constraint_series(&two, DELTA).len(), 2);
    }

    #[test]
    fn one_level_needs_no_series() {
        let tuf = StepTuf::constant(10.0, 1.0).unwrap();
        assert!(constraint_series(&tuf, DELTA).is_empty());
    }

    #[test]
    fn boundary_belongs_to_the_higher_level() {
        // At exactly R = D1 the TUF still pays U1 (Eq. 10's "0 < R <= D1").
        let tuf = StepTuf::two_level(10.0, 0.5, 4.0, 1.0).unwrap();
        assert_only_correct_level(&tuf, 0.5, 1);
        // Just past D1 + δ, only U2 works.
        assert_only_correct_level(&tuf, 0.5 + 2.0 * DELTA, 2);
    }

    #[test]
    fn small_big_m_fails_to_pin() {
        // With M too small the series rejects even the correct level — the
        // reason the paper stresses "as long as M is large enough".
        let tuf = StepTuf::two_level(10.0, 0.5, 4.0, 1.0).unwrap();
        let series = constraint_series(&tuf, DELTA);
        let ok = series_satisfied(&series, 0.3, 10.0, 1e-6, 1e-9);
        assert!(!ok);
    }

    #[test]
    fn residual_formula_matches_hand_expansion() {
        // Eq 12 for the two-level TUF: (R − D1) + M(U − U1).
        let tuf = StepTuf::two_level(10.0, 0.5, 4.0, 1.0).unwrap();
        let series = constraint_series(&tuf, DELTA);
        let c = &series[0];
        let m = 1000.0;
        let hand = (0.7 - 0.5) + m * (4.0 - 10.0);
        assert!((c.residual(0.7, 4.0, m) - hand).abs() < 1e-9);
    }
}
