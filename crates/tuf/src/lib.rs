// palb:lint-tier = lib
//! # palb-tuf — time-utility functions for SLA-based profit
//!
//! Implements the profit model of *Profit Aware Load Balancing for
//! Distributed Cloud Data Centers* (Liu et al., IPPS 2013), §III-B1:
//! requests earn revenue according to a **time-utility function (TUF)** of
//! their (mean) delay. The paper focuses on multi-level step-downward TUFs
//! because constant and smoothly decaying TUFs are special / limiting cases.
//!
//! Three pieces:
//!
//! * [`StepTuf`] — validated multi-level step-downward functions (Eq. 9, 10,
//!   16) with level queries used by the optimizer's branch-and-bound.
//! * [`bigm`] — the paper's transformation of a step TUF into a big-M
//!   constraint series (Eqs. 11–13, 17) consumable by a continuous solver.
//! * [`lagrange`] — the closed-form level-selection polynomial (Eqs. 25–26).
//!
//! ```
//! use palb_tuf::StepTuf;
//!
//! // Two-level TUF: $10 if mean delay ≤ 0.5 h, $4 if ≤ 1 h, else nothing.
//! let tuf = StepTuf::two_level(10.0, 0.5, 4.0, 1.0).unwrap();
//! assert_eq!(tuf.eval(0.3), 10.0);
//! assert_eq!(tuf.eval(0.8), 4.0);
//! assert_eq!(tuf.eval(1.2), 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bigm;
pub mod lagrange;
mod shape;
mod step;

pub use bigm::{constraint_series, recommended_big_m, series_satisfied, BigMConstraint};
pub use lagrange::{snap_level, utility_polynomial};
pub use shape::Tuf;
pub use step::{Level, StepTuf, TufError};
