//! Loom models of the route-table hot-swap protocol
//! ([`palb_serve::PlanCell`] / [`palb_serve::PlanReader`]).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (`cargo xtask loom`, the
//! CI loom job), where [`palb_obs::sync`] re-exports loom's instrumented
//! primitives so every interleaving of publishers and readers is
//! explored, not sampled. The claims checked are exactly the ones the
//! dispatcher relies on:
//!
//! * readers never observe a **torn** payload — the `(id, checksum)`
//!   invariant holds on every schedule;
//! * readers never observe a **stale-freed** payload — loom's `Arc`
//!   verifies every access hits live memory and that nothing leaks;
//! * the epoch a reader syncs to is **coherent** with the payload it
//!   then routes against (payload at least as new as the epoch);
//! * each publication bumps the swap counter **exactly once**, so
//!   `swaps()` reconciles with the number of publish calls.
#![cfg(loom)]

use loom::sync::Arc;
use palb_serve::PlanCell;

/// Payload `(id, id * 3)`: any torn read breaks the checksum.
fn payload(id: u64) -> (u64, u64) {
    (id, id * 3)
}

/// One publisher racing one reader: the reader sees untorn payloads and
/// monotone epochs, and the payload is never older than the epoch the
/// sync reported.
#[test]
fn reader_never_tears_under_publishes() {
    loom::model(|| {
        let cell = Arc::new(PlanCell::new(payload(0)));
        let publisher = {
            let c = Arc::clone(&cell);
            loom::thread::spawn(move || {
                c.publish(payload(1));
                c.publish(payload(2));
            })
        };
        let reader = {
            let c = Arc::clone(&cell);
            loom::thread::spawn(move || {
                let mut r = c.reader();
                let mut last = 0u64;
                for _ in 0..3 {
                    let seen = r.sync();
                    assert!(seen >= last, "epoch went backwards");
                    last = seen;
                    let (id, check) = *r.current();
                    assert_eq!(check, id * 3, "torn payload");
                    // Epoch 1 is the boot table (id 0); each publish adds
                    // one to both. A refresh may grab an even newer
                    // payload than the epoch it observed — never older.
                    assert!(id + 1 >= seen, "payload older than synced epoch");
                }
            })
        };
        publisher.join().unwrap();
        reader.join().unwrap();
        // Exactly-once: two publish calls, two counted swaps.
        assert_eq!(cell.swaps(), 2);
        assert_eq!(*cell.load(), payload(2));
    });
}

/// Two concurrent publishers: publications serialize, the counter
/// reconciles exactly, and the surviving payload is one of the two
/// published values (untorn).
#[test]
fn concurrent_publishes_count_exactly_once_each() {
    loom::model(|| {
        let cell = Arc::new(PlanCell::new(payload(0)));
        let publish = |c: Arc<PlanCell<(u64, u64)>>, id: u64| {
            loom::thread::spawn(move || {
                let epoch = c.publish(payload(id));
                assert!(epoch >= 2, "publish returned a pre-boot epoch");
            })
        };
        let t1 = publish(Arc::clone(&cell), 1);
        let t2 = publish(Arc::clone(&cell), 2);
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(cell.swaps(), 2, "swap counter must reconcile");
        let (id, check) = *cell.load();
        assert!(id == 1 || id == 2, "final payload must be a published one");
        assert_eq!(check, id * 3, "torn payload");
    });
}

/// A reader that stops syncing keeps its pinned table alive and intact
/// (drop-free swap): the publisher replacing the plan must not free the
/// payload the reader still routes against.
#[test]
fn unsynced_reader_keeps_old_table_alive() {
    loom::model(|| {
        let cell = Arc::new(PlanCell::new(payload(7)));
        let mut r = cell.reader();
        r.sync();
        let publisher = {
            let c = Arc::clone(&cell);
            loom::thread::spawn(move || {
                c.publish(payload(8));
            })
        };
        // The pinned payload stays valid and untorn regardless of where
        // the publish lands in the schedule.
        let (id, check) = *r.current();
        assert_eq!((id, check), (7, 21));
        publisher.join().unwrap();
        r.sync();
        assert_eq!(*r.current(), payload(8));
        assert_eq!(cell.swaps(), 1);
    });
}
