//! End-to-end dispatcher tests on the §V system: a real `ResilientPolicy`
//! plans each slot on the background planner thread, workers replay a
//! seed-pure stream through the hot-swapped route tables, and the
//! reports must reconcile exactly.

use palb_cluster::presets;
use palb_core::obs::{names, Recorder, Registry};
use palb_obs::sync::Arc;
use palb_serve::{serve_replay, DriftOptions, EstimatorConfig, ServeOptions, ShiftSpec};
use palb_workload::Trace;

/// A 3-slot trace over the §V system: low arrivals, scaled per slot so
/// every slot re-plans against a different matrix.
fn three_slot_trace() -> Trace {
    let base = presets::section_v_low_arrivals();
    let scale = |f: f64| -> Vec<Vec<f64>> {
        base.iter()
            .map(|row| row.iter().map(|r| r * f).collect())
            .collect()
    };
    Trace::new(vec![scale(1.0), scale(1.3), scale(0.7)])
}

fn base_options() -> ServeOptions {
    ServeOptions {
        threads: 2,
        seed: 1234,
        requests_per_slot: 120_000,
        ..ServeOptions::default()
    }
}

#[test]
fn replay_reconciles_and_converges_to_plan_mix() {
    let system = presets::section_v();
    let trace = three_slot_trace();
    let report = serve_replay(&system, &trace, &base_options()).expect("replay");
    assert_eq!(report.slots, 3);
    assert_eq!(report.requests, 3 * 120_000);
    assert_eq!(
        report.routed + report.shed,
        report.requests,
        "drop-free: every request either routes or sheds"
    );
    // One boundary swap per slot, no drift -> exact reconciliation.
    assert_eq!(report.boundary_swaps, 3);
    assert_eq!(report.drift_replans, 0);
    assert_eq!(report.total_swaps, 3);
    // The empirical mix converges to the plan's dispatch fractions.
    let div = report.max_mix_divergence.expect("mix was scored");
    assert!(div < 0.02, "mix divergence {div} too large");
    // Latency sampling produced a usable p99.
    assert!(report.latency_samples > 0);
    let p99 = report.route_p99_seconds.expect("p99");
    assert!(p99 > 0.0 && p99 < 1.0, "implausible p99 {p99}");
    assert!(report.elapsed_seconds > 0.0);
    assert!(report.routed_per_second > 0.0);
}

#[test]
fn routed_and_mix_are_thread_invariant_without_drift() {
    let system = presets::section_v();
    let trace = three_slot_trace();
    let mut opts1 = base_options();
    opts1.threads = 1;
    let mut opts4 = base_options();
    opts4.threads = 4;
    let r1 = serve_replay(&system, &trace, &opts1).expect("t1");
    let r4 = serve_replay(&system, &trace, &opts4).expect("t4");
    assert_eq!(r1.routed, r4.routed);
    assert_eq!(r1.shed, r4.shed);
    for (a, b) in r1.per_slot.iter().zip(r4.per_slot.iter()) {
        assert_eq!(a.routed, b.routed, "slot {} routed differs", a.slot);
        assert_eq!(a.shed, b.shed, "slot {} shed differs", a.slot);
    }
}

#[test]
fn obs_attachment_is_invisible_to_serving_results() {
    let system = presets::section_v();
    let trace = three_slot_trace();
    let quiet = serve_replay(&system, &trace, &base_options()).expect("noop");
    let registry = Arc::new(Registry::new());
    let mut opts = base_options();
    opts.obs = Recorder::attached(Arc::clone(&registry));
    let loud = serve_replay(&system, &trace, &opts).expect("attached");
    // Bitwise-identical serving outcome with metrics on.
    assert_eq!(quiet.routed, loud.routed);
    assert_eq!(quiet.shed, loud.shed);
    assert_eq!(quiet.boundary_swaps, loud.boundary_swaps);
    // And the exported counters reconcile with the report.
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter_value(names::ROUTES_TOTAL, &[]),
        Some(loud.routed)
    );
    assert_eq!(
        snap.counter_value(names::ROUTES_SHED_TOTAL, &[]),
        Some(loud.shed)
    );
    assert_eq!(
        snap.counter_value(names::PLAN_SWAPS_TOTAL, &[]),
        Some(loud.boundary_swaps)
    );
    assert!(snap.contains_family(names::ROUTE_SECONDS));
}

#[test]
fn scripted_shift_triggers_drift_replan_and_stays_drop_free() {
    let system = presets::section_v();
    let trace = three_slot_trace();
    // Mid-slot-1 shift: concentrate all traffic on front-end 0, class 0
    // (a violent mix change the boundary plan did not expect).
    let mut shifted = presets::section_v_low_arrivals();
    for (s, row) in shifted.iter_mut().enumerate() {
        for (k, r) in row.iter_mut().enumerate() {
            *r = if s == 0 && k == 0 { 400.0 } else { 0.0 };
        }
    }
    let mut opts = base_options();
    opts.requests_per_slot = 200_000;
    opts.drift = Some(DriftOptions {
        check_every: 20_000,
        estimator: EstimatorConfig {
            blend: 0.0,
            threshold: 0.5,
            min_rate: 1.0,
        },
        max_replans_per_slot: 1,
    });
    opts.shift = Some(ShiftSpec {
        slot: 1,
        at_fraction: 0.25,
        rates: shifted,
    });
    let report = serve_replay(&system, &trace, &opts).expect("drift replay");
    assert!(
        report.drift_replans >= 1,
        "shift should trigger a re-plan (checks: {})",
        report.drift_checks
    );
    assert_eq!(
        report.total_swaps,
        report.boundary_swaps + report.drift_replans,
        "swap counters reconcile"
    );
    assert_eq!(
        report.routed + report.shed,
        report.requests,
        "hot swap dropped requests"
    );
    assert!(report.per_slot[1].drift_replans >= 1);
    // Slots without drift still converge to their plans.
    assert!(report.per_slot[0].mix_divergence.unwrap() < 0.02);
}

#[test]
fn option_validation_rejects_nonsense() {
    let system = presets::section_v();
    let trace = three_slot_trace();
    let mut zero_threads = base_options();
    zero_threads.threads = 0;
    assert!(serve_replay(&system, &trace, &zero_threads).is_err());
    let mut zero_requests = base_options();
    zero_requests.requests_per_slot = 0;
    assert!(serve_replay(&system, &trace, &zero_requests).is_err());
    let mut bad_shift = base_options();
    bad_shift.shift = Some(ShiftSpec {
        slot: 99,
        at_fraction: 0.5,
        rates: vec![],
    });
    assert!(serve_replay(&system, &trace, &bad_shift).is_err());
}
