//! Property tests of the serving-layer routing contract: for randomized
//! systems and hand-built dispatch plans, replaying a seed-pure
//! [`ReplayStream`] through a compiled [`RouteTable`] produces an
//! empirical routing mix that converges to the plan's φ fractions per
//! `(class, front-end)` cell — targets *and* the shed category — within
//! statistical tolerance. This is the live-serving counterpart of the
//! batch evaluator's exactness: the dispatcher routes individual
//! requests, but in aggregate it must reproduce the plan.

use palb_cluster::{ClassId, DcId, FrontEndId};
use palb_core::{Dims, Dispatch};
use palb_serve::{Route, RouteTable};
use palb_workload::replay::{mix64, ReplayStream};
use proptest::prelude::*;

/// Decorrelates routing words from the arrival stream, mirroring the
/// dispatcher's salt.
const ROUTE_SALT: u64 = 0xA5A5_5A5A_0F0F_F0F0;

/// A randomized serving instance: offered rates, admission fractions,
/// and per-server dispatch weights.
#[derive(Debug, Clone)]
struct Instance {
    classes: usize,
    front_ends: usize,
    servers_per_dc: Vec<usize>,
    /// Offered rate per `[front_end][class]` (zeros allowed).
    rates: Vec<Vec<f64>>,
    /// Fraction of the offered rate the plan admits, per `[front_end][class]`.
    admitted: Vec<Vec<f64>>,
    /// Raw per-server split weights per `[front_end][class][server]`.
    weights: Vec<Vec<Vec<f64>>>,
    seed: u64,
}

fn instance() -> impl Strategy<Value = Instance> {
    (
        1usize..=3,
        1usize..=3,
        proptest::collection::vec(1usize..=3, 1..=2),
    )
        .prop_flat_map(|(classes, front_ends, servers_per_dc)| {
            let total: usize = servers_per_dc.iter().sum();
            let rate = prop_oneof![3 => 1.0f64..100.0, 1 => Just(0.0)];
            (
                Just(classes),
                Just(front_ends),
                Just(servers_per_dc),
                proptest::collection::vec(
                    proptest::collection::vec(rate, classes..=classes),
                    front_ends..=front_ends,
                ),
                proptest::collection::vec(
                    proptest::collection::vec(0.0f64..=1.0, classes..=classes),
                    front_ends..=front_ends,
                ),
                proptest::collection::vec(
                    proptest::collection::vec(
                        proptest::collection::vec(0.0f64..1.0, total..=total),
                        classes..=classes,
                    ),
                    front_ends..=front_ends,
                ),
                any::<u64>(),
            )
        })
        .prop_map(
            |(classes, front_ends, servers_per_dc, rates, admitted, weights, seed)| Instance {
                classes,
                front_ends,
                servers_per_dc,
                rates,
                admitted,
                weights,
                seed,
            },
        )
}

/// Hand-builds the dispatch the instance describes: each cell's admitted
/// mass split across servers proportionally to its weights (a cell with
/// all-zero weights dispatches nothing — everything sheds).
fn build_dispatch(inst: &Instance) -> (Dispatch, Vec<usize>) {
    let dcs = inst.servers_per_dc.len();
    let mut server_offset = Vec::with_capacity(dcs);
    let mut total_servers = 0usize;
    for &n in &inst.servers_per_dc {
        server_offset.push(total_servers);
        total_servers += n;
    }
    let dims = Dims {
        classes: inst.classes,
        front_ends: inst.front_ends,
        dcs,
        servers_per_dc: inst.servers_per_dc.clone(),
        server_offset: server_offset.clone(),
        total_servers,
    };
    let mut d = Dispatch::zero(dims);
    for s in 0..inst.front_ends {
        for k in 0..inst.classes {
            let offered = inst.rates[s][k];
            if offered <= 0.0 {
                continue;
            }
            let wsum: f64 = inst.weights[s][k].iter().sum();
            if wsum <= 0.0 {
                continue;
            }
            let mass = offered * inst.admitted[s][k];
            for (dc, (&off, &n)) in server_offset
                .iter()
                .zip(inst.servers_per_dc.iter())
                .enumerate()
            {
                for local in 0..n {
                    let lam = mass * inst.weights[s][k][off + local] / wsum;
                    if lam > 0.0 {
                        d.set_lambda(ClassId(k), FrontEndId(s), DcId(dc), local, lam);
                    }
                }
            }
        }
    }
    (d, server_offset)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Replaying the stream through the compiled table converges, per
    /// `(class, front-end)` cell, to the plan's φ fractions — including
    /// the shed category — within a 6σ binomial band.
    #[test]
    fn empirical_mix_converges_to_plan_fractions(inst in instance()) {
        let (dispatch, server_offset) = build_dispatch(&inst);
        let table = RouteTable::compile(&dispatch, &inst.rates, 0);
        let stream = ReplayStream::from_rates(&inst.rates, 0, inst.seed);
        prop_assume!(stream.is_some(), "all-idle matrix offers no requests");
        let stream = stream.unwrap();

        let n = 300_000u64;
        let mut counts = vec![0u64; table.mix_len()];
        let mut cell_totals = vec![0u64; inst.classes * inst.front_ends];
        for i in 0..n {
            let (s, k) = stream.request(i);
            let word = mix64(ROUTE_SALT ^ i);
            let (route, idx) = table.route_indexed(k, s, word);
            prop_assert!(table.mix_range(k, s).contains(&idx));
            counts[idx] += 1;
            cell_totals[k * inst.front_ends + s] += 1;
            // Subsample structural validity: a routed target must carry
            // positive planned mass and live inside its claimed DC.
            if i % 101 == 0 {
                if let Route::Target { dc, server } = route {
                    let lam = dispatch.lambda_by_server(ClassId(k), FrontEndId(s), server);
                    prop_assert!(lam > 0.0, "routed to a zero-λ server {server}");
                    let lo = server_offset[dc];
                    let hi = lo + inst.servers_per_dc[dc];
                    prop_assert!(
                        (lo..hi).contains(&server),
                        "server {server} outside DC {dc} range {lo}..{hi}"
                    );
                }
            }
        }

        for k in 0..inst.classes {
            for s in 0..inst.front_ends {
                let cell_n = cell_totals[k * inst.front_ends + s];
                if cell_n < 1_000 {
                    continue; // too few arrivals for a meaningful band
                }
                let range = table.mix_range(k, s);
                let mut phi_sum = 0.0;
                for idx in range {
                    let phi = table.mix_fraction(idx);
                    phi_sum += phi;
                    let emp = counts[idx] as f64 / cell_n as f64;
                    let sigma = (phi * (1.0 - phi) / cell_n as f64).sqrt();
                    let tol = 6.0 * sigma + 0.005;
                    prop_assert!(
                        (emp - phi).abs() <= tol,
                        "cell ({k},{s}) category {idx}: empirical {emp} vs plan φ {phi} \
                         (n={cell_n}, tol={tol})"
                    );
                }
                // A cell that receives traffic must carry a full
                // probability budget.
                prop_assert!((phi_sum - 1.0).abs() < 1e-9, "cell ({k},{s}) φ sums to {phi_sum}");
            }
        }
    }

    /// `route` and `route_indexed` agree on every draw, and the same
    /// word always routes the same way (purity).
    #[test]
    fn route_and_route_indexed_agree(inst in instance(), salt in any::<u64>()) {
        let (dispatch, _) = build_dispatch(&inst);
        let table = RouteTable::compile(&dispatch, &inst.rates, 1);
        for k in 0..inst.classes {
            for s in 0..inst.front_ends {
                for i in 0..256u64 {
                    let word = mix64(salt ^ i);
                    let (via_indexed, _) = table.route_indexed(k, s, word);
                    prop_assert_eq!(table.route(k, s, word), via_indexed);
                    prop_assert_eq!(table.route(k, s, word), via_indexed, "impure route");
                }
            }
        }
    }
}
