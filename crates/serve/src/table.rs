//! Plan → route-table compilation.
//!
//! A [`Dispatch`] plan speaks in rates: `λ_{k,s,sv}` requests per time
//! unit from front-end `s`, class `k`, to global server `sv`. A live
//! dispatcher speaks in *individual requests*: "class `k` just arrived at
//! front-end `s` — which server?". [`RouteTable::compile`] bridges the
//! two once per plan, off the hot path:
//!
//! * each `(class, front-end)` cell becomes a [`AliasTable`] over its
//!   positive-rate `(data center, server)` targets, weighted by `λ` — a
//!   route is two array reads and one comparison, O(1) in the target
//!   count, no allocation, no lock;
//! * offered mass the plan does not dispatch anywhere (`rates[s][k] −
//!   Σ_sv λ_{k,s,sv}` — the paper's profit-driven admission control)
//!   becomes an explicit *shed* category with exactly that probability,
//!   so the table routes and sheds in the same plan proportions the
//!   batch evaluator scores;
//! * the per-cell offered rates the plan was solved against ride along
//!   ([`RouteTable::plan_rates`]) as the reference for drift detection.
//!
//! The table is immutable after compilation — hot-swapping happens one
//! level up ([`crate::swap::PlanCell`]) by replacing the whole table.

use palb_cluster::{ClassId, FrontEndId};
use palb_core::Dispatch;
use palb_workload::replay::AliasTable;

/// Where one request goes: a concrete server, or shed (not admitted by
/// the plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Serve on `server` (global index) in data center `dc`.
    Target {
        /// Data center index (`l`).
        dc: usize,
        /// Global server index (`sv`).
        server: usize,
    },
    /// Not admitted: the plan leaves this request unserved.
    Shed,
}

/// One `(data center, server)` routing target.
#[derive(Debug, Clone, Copy)]
struct Target {
    dc: u32,
    server: u32,
}

/// The per-`(class, front-end)` sampler: targets plus an optional final
/// shed category.
#[derive(Debug, Clone)]
struct Group {
    /// `None` when the cell has no positive dispatch **and** no offered
    /// mass — every draw sheds.
    table: Option<AliasTable>,
    targets: Vec<Target>,
    /// Planned probability of each category (targets, then shed last when
    /// present) — the φ fractions the empirical mix must converge to.
    fractions: Vec<f64>,
}

/// An immutable, cache-friendly compilation of one plan.
///
/// See the [module docs](self) for the construction contract. All lookup
/// state is flat and read-only; the table is `Send + Sync` and shared
/// across workers behind an `Arc`.
#[derive(Debug, Clone)]
pub struct RouteTable {
    slot: usize,
    classes: usize,
    front_ends: usize,
    groups: Vec<Group>,
    /// Offered rate per `(class, front-end)` cell (group order), as the
    /// plan assumed it.
    plan_rates: Vec<f64>,
    /// Prefix offset of each group's categories in the flat mix-count
    /// layout (each group owns `targets.len() + 1` slots, shed last).
    mix_offsets: Vec<usize>,
    mix_len: usize,
}

impl RouteTable {
    /// Compiles `dispatch` (solved against offered `rates[front_end][class]`
    /// for `slot`) into a route table.
    ///
    /// Rates are clamped to finite non-negatives; dispatch mass above the
    /// offered rate (numerical dust from the LP) tightens the shed
    /// category to zero rather than going negative.
    // palb:decision-path
    pub fn compile(dispatch: &Dispatch, rates: &[Vec<f64>], slot: usize) -> RouteTable {
        let dims = dispatch.dims();
        let classes = dims.classes;
        let front_ends = dims.front_ends;
        let mut groups = Vec::with_capacity(classes * front_ends);
        let mut plan_rates = Vec::with_capacity(classes * front_ends);
        let mut mix_offsets = Vec::with_capacity(classes * front_ends);
        let mut mix_len = 0usize;
        for k in 0..classes {
            for s in 0..front_ends {
                let offered = rates
                    .get(s)
                    .and_then(|row| row.get(k))
                    .copied()
                    .filter(|r| r.is_finite() && *r > 0.0)
                    .unwrap_or(0.0);
                let mut targets = Vec::new();
                let mut weights = Vec::new();
                let mut dispatched = 0.0;
                for sv in 0..dims.total_servers {
                    let lam = dispatch.lambda_by_server(ClassId(k), FrontEndId(s), sv);
                    if lam.is_finite() && lam > 0.0 {
                        targets.push(Target {
                            dc: dims.dc_of_server(sv).0 as u32,
                            server: sv as u32,
                        });
                        weights.push(lam);
                        dispatched += lam;
                    }
                }
                let shed = (offered - dispatched).max(0.0);
                if shed > 0.0 {
                    weights.push(shed);
                }
                let total: f64 = weights.iter().sum();
                let fractions: Vec<f64> = if total > 0.0 {
                    weights.iter().map(|w| w / total).collect()
                } else {
                    Vec::new()
                };
                let table = AliasTable::from_weights(&weights);
                mix_offsets.push(mix_len);
                // Every group owns a shed slot in the mix layout, even
                // when its planned shed probability is zero.
                mix_len += targets.len() + 1;
                groups.push(Group {
                    table,
                    targets,
                    fractions,
                });
                plan_rates.push(offered);
            }
        }
        RouteTable {
            slot,
            classes,
            front_ends,
            groups,
            plan_rates,
            mix_offsets,
            mix_len,
        }
    }

    /// An all-shed table (no plan yet): every route sheds. Used as the
    /// pre-boot value of a [`crate::swap::PlanCell`].
    pub fn empty(classes: usize, front_ends: usize, slot: usize) -> RouteTable {
        let cells = classes * front_ends;
        RouteTable {
            slot,
            classes,
            front_ends,
            groups: (0..cells)
                .map(|_| Group {
                    table: None,
                    targets: Vec::new(),
                    fractions: Vec::new(),
                })
                .collect(),
            plan_rates: vec![0.0; cells],
            mix_offsets: (0..cells).collect(),
            mix_len: cells,
        }
    }

    /// The slot this table's plan was solved for.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Class count `K`.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Front-end count `S`.
    pub fn front_ends(&self) -> usize {
        self.front_ends
    }

    /// Offered rate per `(class, front-end)` cell in group order
    /// (`k * front_ends + s`) — the drift-detection reference.
    pub fn plan_rates(&self) -> &[f64] {
        &self.plan_rates
    }

    /// Flat length of the mix-count layout ([`Self::route_indexed`]'s
    /// index domain).
    pub fn mix_len(&self) -> usize {
        self.mix_len
    }

    /// Planned probability of mix category `idx` *within its group*
    /// (targets then shed), and the group it belongs to. Returns `0.0`
    /// for the shed slot of a group with no mass.
    pub fn mix_fraction(&self, idx: usize) -> f64 {
        let g = self
            .mix_offsets
            .partition_point(|&off| off <= idx)
            .saturating_sub(1);
        let group = &self.groups[g];
        let cat = idx - self.mix_offsets[g];
        if cat < group.fractions.len() {
            group.fractions[cat]
        } else {
            // The shed slot of a group whose plan sheds nothing (or an
            // all-idle group): planned probability zero.
            0.0
        }
    }

    /// The mix-layout range owned by `(class k, front-end s)`.
    pub fn mix_range(&self, k: usize, s: usize) -> std::ops::Range<usize> {
        let g = k * self.front_ends + s;
        let start = self.mix_offsets[g];
        start..start + self.groups[g].targets.len() + 1
    }

    /// Routes one request of class `k` arriving at front-end `s`, using
    /// the pre-mixed random word, and returns the route plus its global
    /// mix-count index (for empirical-mix accounting).
    // palb:hot-path(no-alloc)
    pub fn route_indexed(&self, k: usize, s: usize, word: u64) -> (Route, usize) {
        let g = k * self.front_ends + s;
        let group = &self.groups[g];
        let base = self.mix_offsets[g];
        match &group.table {
            Some(table) => {
                let cat = table.sample(word);
                if cat < group.targets.len() {
                    let t = group.targets[cat];
                    (
                        Route::Target {
                            dc: t.dc as usize,
                            server: t.server as usize,
                        },
                        base + cat,
                    )
                } else {
                    (Route::Shed, base + group.targets.len())
                }
            }
            None => (Route::Shed, base + group.targets.len()),
        }
    }

    /// Routes one request of class `k` arriving at front-end `s`.
    // palb:hot-path(no-alloc)
    pub fn route(&self, k: usize, s: usize, word: u64) -> Route {
        let g = k * self.front_ends + s;
        let group = &self.groups[g];
        match &group.table {
            Some(table) => {
                let cat = table.sample(word);
                if cat < group.targets.len() {
                    let t = group.targets[cat];
                    Route::Target {
                        dc: t.dc as usize,
                        server: t.server as usize,
                    }
                } else {
                    Route::Shed
                }
            }
            None => Route::Shed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palb_cluster::DcId;
    use palb_core::Dims;
    use palb_workload::replay::mix64;

    /// A toy 2-class × 2-front-end × (2 DCs of 2 servers) dispatch.
    fn toy_dispatch() -> (Dispatch, Vec<Vec<f64>>) {
        let dims = Dims {
            classes: 2,
            front_ends: 2,
            dcs: 2,
            servers_per_dc: vec![2, 2],
            server_offset: vec![0, 2],
            total_servers: 4,
        };
        let mut d = Dispatch::zero(dims);
        // Class 0 from fe 0: 60% to DC0/server0, 40% to DC1/server2.
        d.set_lambda(ClassId(0), FrontEndId(0), DcId(0), 0, 6.0);
        d.set_lambda(ClassId(0), FrontEndId(0), DcId(1), 0, 4.0);
        // Class 1 from fe 1: all to DC1/server3, half the offered rate
        // (the other half sheds).
        d.set_lambda(ClassId(1), FrontEndId(1), DcId(1), 1, 2.0);
        // rates[front_end][class]
        let rates = vec![vec![10.0, 0.0], vec![0.0, 4.0]];
        (d, rates)
    }

    #[test]
    fn compile_routes_in_plan_proportions() {
        let (d, rates) = toy_dispatch();
        let t = RouteTable::compile(&d, &rates, 0);
        assert_eq!(t.classes(), 2);
        assert_eq!(t.front_ends(), 2);
        let n = 100_000u64;
        let mut to_sv0 = 0u64;
        let mut to_sv2 = 0u64;
        for i in 0..n {
            match t.route(0, 0, mix64(i)) {
                Route::Target { dc: 0, server: 0 } => to_sv0 += 1,
                Route::Target { dc: 1, server: 2 } => to_sv2 += 1,
                other => panic!("unexpected route {other:?}"),
            }
        }
        let f0 = to_sv0 as f64 / n as f64;
        assert!((f0 - 0.6).abs() < 0.01, "server0 fraction {f0}");
        assert!((to_sv2 as f64 / n as f64 - 0.4).abs() < 0.01);
    }

    #[test]
    fn compile_sheds_unadmitted_mass() {
        let (d, rates) = toy_dispatch();
        let t = RouteTable::compile(&d, &rates, 0);
        let n = 100_000u64;
        let mut shed = 0u64;
        for i in 0..n {
            match t.route(1, 1, mix64(i)) {
                Route::Shed => shed += 1,
                Route::Target { dc: 1, server: 3 } => {}
                other => panic!("unexpected route {other:?}"),
            }
        }
        let f = shed as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.01, "shed fraction {f}");
    }

    #[test]
    fn idle_cell_sheds_everything() {
        let (d, rates) = toy_dispatch();
        let t = RouteTable::compile(&d, &rates, 0);
        // (class 0, fe 1) has no offered rate and no dispatch.
        for i in 0..64 {
            assert_eq!(t.route(0, 1, mix64(i)), Route::Shed);
        }
    }

    #[test]
    fn mix_layout_fractions_sum_per_group() {
        let (d, rates) = toy_dispatch();
        let t = RouteTable::compile(&d, &rates, 3);
        assert_eq!(t.slot(), 3);
        for k in 0..2 {
            for s in 0..2 {
                let range = t.mix_range(k, s);
                let sum: f64 = range.clone().map(|i| t.mix_fraction(i)).sum();
                let offered = t.plan_rates()[k * 2 + s];
                if offered > 0.0 {
                    assert!((sum - 1.0).abs() < 1e-12, "group ({k},{s}) sums to {sum}");
                } else {
                    assert_eq!(sum, 0.0);
                }
            }
        }
        // route_indexed lands inside the owning group's range.
        for i in 0..1000 {
            let (_, idx) = t.route_indexed(0, 0, mix64(i));
            assert!(t.mix_range(0, 0).contains(&idx));
        }
    }

    #[test]
    fn empty_table_sheds_and_counts_into_shed_slots() {
        let t = RouteTable::empty(2, 3, 7);
        assert_eq!(t.mix_len(), 6);
        for k in 0..2 {
            for s in 0..3 {
                let (r, idx) = t.route_indexed(k, s, mix64((k * 3 + s) as u64));
                assert_eq!(r, Route::Shed);
                assert_eq!(idx, k * 3 + s);
            }
        }
    }
}
