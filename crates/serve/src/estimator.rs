//! Sharded streaming rate estimation and drift detection.
//!
//! The dispatcher must notice, *mid-slot*, that the traffic mix no
//! longer looks like the matrix the active plan was solved against — and
//! it must notice without the workers ever contending on shared counters.
//! The split:
//!
//! * [`ShardedEstimator`] — one shard of relaxed per-`(class, front-end)`
//!   atomic counters **per worker**. The hot-path record is a single
//!   `fetch_add` on a cacheline no other worker writes; merging happens
//!   only on snapshot.
//! * [`DriftMonitor`] — coordinator-owned sliding-window + EWMA state.
//!   Each drift check snapshots the merged counters, converts the
//!   window's deltas into per-cell rate estimates on the plan's own
//!   scale, folds them into the EWMA, and compares against the plan's
//!   reference rates ([`crate::table::RouteTable::plan_rates`]).
//!
//! Rate scale: the replay clock is derived from the stream itself — a
//! window of `Δ` requests out of a slot offering `total_rate` spans
//! `Δ / total_rate` time units, so estimates land directly on the same
//! requests-per-time-unit axis as the plan matrix. A consequence worth
//! documenting: detection keys on the **shape** of the mix (and on
//! per-cell magnitude relative to that clock), which is exactly the
//! signal a re-plan can act on.

use palb_obs::sync::{AtomicU64, Ordering};

/// One worker's private counter shard.
#[derive(Debug)]
struct Shard {
    counts: Vec<AtomicU64>,
}

/// Per-`(class, front-end)` arrival counters, sharded one-per-worker.
///
/// Cell order matches [`crate::table::RouteTable::plan_rates`]:
/// `k * front_ends + s`.
#[derive(Debug)]
pub struct ShardedEstimator {
    classes: usize,
    front_ends: usize,
    shards: Vec<Shard>,
}

impl ShardedEstimator {
    /// An estimator for `classes × front_ends` cells across `shards`
    /// worker shards.
    pub fn new(classes: usize, front_ends: usize, shards: usize) -> Self {
        let cells = classes * front_ends;
        ShardedEstimator {
            classes,
            front_ends,
            shards: (0..shards.max(1))
                .map(|_| Shard {
                    counts: (0..cells).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
        }
    }

    /// Number of `(class, front-end)` cells.
    pub fn cells(&self) -> usize {
        self.classes * self.front_ends
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Records one arrival of class `k` at front-end `s` on `shard`.
    // palb:hot-path(no-alloc)
    pub fn record(&self, shard: usize, k: usize, s: usize) {
        self.shards[shard].counts[k * self.front_ends + s].fetch_add(1, Ordering::Relaxed);
    }

    /// Merges all shards into per-cell totals (snapshot; the counters
    /// keep running).
    pub fn merged(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.cells()];
        self.merge_into(&mut out);
        out
    }

    /// Allocation-free merge into a caller-owned buffer.
    pub fn merge_into(&self, out: &mut [u64]) {
        for slot in out.iter_mut() {
            *slot = 0;
        }
        for shard in &self.shards {
            for (slot, c) in out.iter_mut().zip(shard.counts.iter()) {
                *slot += c.load(Ordering::Relaxed);
            }
        }
    }

    /// Total arrivals across all cells and shards.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|sh| {
                sh.counts
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .sum::<u64>()
            })
            .sum()
    }
}

/// Tuning for [`DriftMonitor`].
#[derive(Debug, Clone)]
pub struct EstimatorConfig {
    /// EWMA carry weight in `[0, 1)`: `ewma ← blend·ewma + (1−blend)·window`.
    /// `0` trusts each window fully; higher values smooth harder (and
    /// detect slower).
    pub blend: f64,
    /// Relative deviation (vs the plan rate) above which a cell counts
    /// as drifted.
    pub threshold: f64,
    /// Cells whose plan *and* estimated rate both sit below this floor
    /// are ignored — relative deviation on near-idle cells is noise.
    pub min_rate: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            blend: 0.25,
            threshold: 0.5,
            min_rate: 1e-6,
        }
    }
}

/// The drift verdict: which cell deviated and by how much.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftVerdict {
    /// Flat cell index (`k * front_ends + s`).
    pub cell: usize,
    /// The plan's reference rate for the cell.
    pub plan_rate: f64,
    /// The EWMA-smoothed estimated rate.
    pub estimated: f64,
    /// `|estimated − plan| / max(plan, min_rate)`.
    pub deviation: f64,
}

/// Coordinator-side sliding-window + EWMA state over a
/// [`ShardedEstimator`].
#[derive(Debug)]
pub struct DriftMonitor {
    cfg: EstimatorConfig,
    last_counts: Vec<u64>,
    last_total: u64,
    ewma: Vec<f64>,
    windows: u64,
}

impl DriftMonitor {
    /// A monitor over `cells` flat cells.
    pub fn new(cells: usize, cfg: EstimatorConfig) -> Self {
        DriftMonitor {
            cfg,
            last_counts: vec![0; cells],
            last_total: 0,
            ewma: vec![0.0; cells],
            windows: 0,
        }
    }

    /// Windows folded so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// The EWMA-smoothed per-cell rate estimates (empty until the first
    /// window).
    pub fn estimates(&self) -> &[f64] {
        &self.ewma
    }

    /// Folds the window since the previous `observe` into the EWMA.
    ///
    /// `total_rate` is the aggregate offered rate of the replayed matrix
    /// (the replay clock: `Δ` requests span `Δ / total_rate` time units).
    /// Windows with no new arrivals are skipped.
    pub fn observe(&mut self, est: &ShardedEstimator, total_rate: f64) {
        let mut now = vec![0u64; self.last_counts.len()];
        est.merge_into(&mut now);
        let total: u64 = now.iter().sum();
        let delta_total = total.saturating_sub(self.last_total);
        if delta_total == 0 || !(total_rate.is_finite() && total_rate > 0.0) {
            return;
        }
        let window_time = delta_total as f64 / total_rate;
        for (i, (&n, &prev)) in now.iter().zip(self.last_counts.iter()).enumerate() {
            let rate = n.saturating_sub(prev) as f64 / window_time;
            self.ewma[i] = if self.windows == 0 {
                rate
            } else {
                self.cfg.blend * self.ewma[i] + (1.0 - self.cfg.blend) * rate
            };
        }
        self.last_counts = now;
        self.last_total = total;
        self.windows += 1;
    }

    /// Compares the smoothed estimates against the plan's reference
    /// rates; returns the worst offending cell above the threshold, if
    /// any. Requires at least one folded window.
    pub fn drifted(&self, plan_rates: &[f64]) -> Option<DriftVerdict> {
        if self.windows == 0 {
            return None;
        }
        let mut worst: Option<DriftVerdict> = None;
        for (cell, (&est, &plan)) in self.ewma.iter().zip(plan_rates.iter()).enumerate() {
            if est < self.cfg.min_rate && plan < self.cfg.min_rate {
                continue;
            }
            let deviation = (est - plan).abs() / plan.max(self.cfg.min_rate);
            if deviation <= self.cfg.threshold {
                continue;
            }
            let beats = worst
                .as_ref()
                .map(|w| deviation > w.deviation)
                .unwrap_or(true);
            if beats {
                worst = Some(DriftVerdict {
                    cell,
                    plan_rate: plan,
                    estimated: est,
                    deviation,
                });
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_across_shards() {
        let est = ShardedEstimator::new(2, 2, 3);
        est.record(0, 0, 0);
        est.record(1, 0, 0);
        est.record(2, 1, 1);
        est.record(2, 1, 1);
        assert_eq!(est.merged(), vec![2, 0, 0, 2]);
        assert_eq!(est.total(), 4);
    }

    #[test]
    fn first_window_seeds_ewma_with_raw_rates() {
        let est = ShardedEstimator::new(1, 2, 1);
        // 30 arrivals at cell 0, 10 at cell 1; total_rate 4.0 means the
        // window spans 10 time units -> rates 3.0 and 1.0.
        for _ in 0..30 {
            est.record(0, 0, 0);
        }
        for _ in 0..10 {
            est.record(0, 0, 1);
        }
        let mut mon = DriftMonitor::new(2, EstimatorConfig::default());
        mon.observe(&est, 4.0);
        assert_eq!(mon.windows(), 1);
        assert!((mon.estimates()[0] - 3.0).abs() < 1e-12);
        assert!((mon.estimates()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_blends_subsequent_windows() {
        let cfg = EstimatorConfig {
            blend: 0.5,
            ..EstimatorConfig::default()
        };
        let est = ShardedEstimator::new(1, 1, 1);
        let mut mon = DriftMonitor::new(1, cfg);
        for _ in 0..10 {
            est.record(0, 0, 0);
        }
        mon.observe(&est, 1.0); // window rate 1.0 -> ewma 1.0
        for _ in 0..30 {
            est.record(0, 0, 0);
        }
        mon.observe(&est, 1.0); // window rate 1.0 (30 req over 30 units)
        assert!((mon.estimates()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_skipped() {
        let est = ShardedEstimator::new(1, 1, 1);
        let mut mon = DriftMonitor::new(1, EstimatorConfig::default());
        mon.observe(&est, 10.0);
        assert_eq!(mon.windows(), 0);
        assert!(mon.drifted(&[5.0]).is_none(), "no window, no verdict");
    }

    #[test]
    fn drift_triggers_on_shape_change_only_above_threshold() {
        let cfg = EstimatorConfig {
            blend: 0.0,
            threshold: 0.5,
            min_rate: 1e-6,
        };
        let est = ShardedEstimator::new(1, 2, 1);
        let mut mon = DriftMonitor::new(2, cfg);
        // Plan expects an even 5.0/5.0 split; observe 75%/25% at the
        // same total -> deviations 0.5 (not > threshold) stay quiet.
        for _ in 0..75 {
            est.record(0, 0, 0);
        }
        for _ in 0..25 {
            est.record(0, 0, 1);
        }
        mon.observe(&est, 10.0);
        assert!(mon.drifted(&[5.0, 5.0]).is_none());
        // Push the skew further: 95/5 deviates 0.9 on both cells.
        for _ in 0..115 {
            est.record(0, 0, 0);
        }
        for _ in 0..5 {
            est.record(0, 0, 1);
        }
        mon.observe(&est, 10.0);
        let v = mon.drifted(&[5.0, 5.0]).expect("should drift");
        assert_eq!(v.cell, 0, "worst cell is the overloaded one");
        assert!(v.deviation > 0.5);
    }

    #[test]
    fn near_idle_cells_are_ignored() {
        let cfg = EstimatorConfig {
            blend: 0.0,
            threshold: 0.5,
            min_rate: 0.5,
        };
        let est = ShardedEstimator::new(1, 2, 1);
        let mut mon = DriftMonitor::new(2, cfg);
        for _ in 0..100 {
            est.record(0, 0, 0);
        }
        est.record(0, 0, 1); // tiny trickle on a cell the plan idles
        mon.observe(&est, 10.0);
        // Cell 1: plan 0, estimate ~0.1 — below min_rate on both sides.
        assert!(mon.drifted(&[10.0, 0.0]).is_none());
    }
}
