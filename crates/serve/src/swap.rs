//! Epoch-published hot-swap cell: lock-free readers, drop-free swaps.
//!
//! The serving hot path must never lock, yet the plan it routes against
//! is replaced at every slot boundary (and on drift triggers). The
//! protocol, built entirely from safe primitives (`#![forbid(unsafe_code)]`
//! holds tree-wide, so no hand-rolled pointer juggling):
//!
//! * [`PlanCell`] holds the current plan as `Mutex<Arc<T>>` plus an
//!   `AtomicU64` **epoch** bumped on every publication;
//! * each worker owns a [`PlanReader`] caching `(Arc<T>, seen_epoch)`.
//!   The steady-state read is **one relaxed-free atomic load** comparing
//!   the published epoch with the cached one — no lock, no contention,
//!   no reference-count traffic. Only in the instant a swap lands does a
//!   reader briefly take the mutex to re-clone the `Arc` (once per swap
//!   per worker, not per request);
//! * swaps are **atomic** — the publisher replaces the `Arc` and bumps
//!   the epoch inside the same critical section, and a reader that
//!   observes the new epoch (acquire) is guaranteed to clone the new
//!   table (the mutex orders it) — a reader can never assemble a torn
//!   half-old/half-new view;
//! * swaps are **drop-free** — in-flight requests keep routing against
//!   the `Arc` they already hold; the old table is freed only when the
//!   last cached reference retires. No request observes a freed table.
//!
//! `tests/loom_swap.rs` model-checks exactly these claims (readers never
//! see a torn or stale-freed payload; the epoch counts publications
//! exactly once each) under loom's exhaustive interleaving search.

use palb_obs::sync::{Arc, AtomicU64, Mutex, Ordering};

/// The shared, hot-swappable holder of the current plan.
///
/// Generic over the payload so the loom model can check the protocol on
/// a small token type; production instantiates
/// `PlanCell<RouteTable>` ([`crate::table::RouteTable`]).
#[derive(Debug)]
pub struct PlanCell<T> {
    /// Publication counter; starts at 1 for the initial value, so
    /// [`PlanCell::swaps`] (`epoch - 1`) counts post-boot publications.
    epoch: AtomicU64,
    current: Mutex<Arc<T>>,
}

impl<T> PlanCell<T> {
    /// A cell holding `initial` at epoch 1 (zero swaps yet).
    pub fn new(initial: T) -> Self {
        PlanCell {
            epoch: AtomicU64::new(1),
            current: Mutex::new(Arc::new(initial)),
        }
    }

    /// Atomically publishes `next` and returns the new epoch.
    pub fn publish(&self, next: T) -> u64 {
        self.publish_arc(Arc::new(next))
    }

    /// Atomically publishes an already-shared payload and returns the
    /// new epoch. The replace and the epoch bump happen inside one
    /// critical section, so `(payload, epoch)` pairs are never torn.
    pub fn publish_arc(&self, next: Arc<T>) -> u64 {
        let mut guard = self
            .current
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = next;
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// The current epoch (1 = initial value, +1 per publication).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of publications since construction.
    pub fn swaps(&self) -> u64 {
        self.epoch().saturating_sub(1)
    }

    /// Clones out the current payload (locks; not for the hot path —
    /// workers go through [`PlanReader`]).
    pub fn load(&self) -> Arc<T> {
        Arc::clone(
            &self
                .current
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// A reader with its cache primed to the current payload.
    pub fn reader(&self) -> PlanReader<'_, T> {
        // Order matters: snapshot the epoch *before* cloning the payload,
        // so a concurrent publish can only make the cached payload newer
        // than `seen` (forcing a harmless refresh), never older.
        let seen = self.epoch();
        let cached = self.load();
        PlanReader {
            cell: self,
            cached,
            seen,
        }
    }
}

/// A per-worker cached view of a [`PlanCell`].
///
/// Readers call [`PlanReader::sync`] once per request (one atomic load in
/// the steady state) and then route against [`PlanReader::current`],
/// which touches no shared state at all.
#[derive(Debug)]
pub struct PlanReader<'a, T> {
    cell: &'a PlanCell<T>,
    cached: Arc<T>,
    seen: u64,
}

impl<'a, T> PlanReader<'a, T> {
    /// Brings the cache up to date with the latest publication and
    /// returns the epoch now cached. Steady state is a single acquire
    /// load; the refresh (mutex + `Arc` clone) runs only in the instant
    /// a new plan has landed.
    // palb:hot-path(no-alloc)
    pub fn sync(&mut self) -> u64 {
        let now = self.cell.epoch.load(Ordering::Acquire);
        if now != self.seen {
            self.refresh(now);
        }
        self.seen
    }

    /// Cold path of [`PlanReader::sync`]: re-clone the published payload.
    fn refresh(&mut self, observed: u64) {
        self.cached = self.cell.load();
        // The payload we just cloned is at least as new as `observed`
        // (the publisher replaces it before bumping the epoch, under the
        // same lock `load` takes). Recording `observed` keeps the next
        // steady-state check accurate: if an even newer publish landed
        // in between, the next `sync` simply refreshes again.
        self.seen = observed;
    }

    /// The cached payload — no shared-state access.
    pub fn current(&self) -> &T {
        &self.cached
    }

    /// The epoch of the cached payload (as of the last [`Self::sync`]).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Convenience: [`Self::sync`] + [`Self::current`] in one call.
    pub fn table(&mut self) -> &T {
        self.sync();
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_is_epoch_one_with_zero_swaps() {
        let cell = PlanCell::new(10u64);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(cell.swaps(), 0);
        assert_eq!(*cell.load(), 10);
    }

    #[test]
    fn publish_bumps_epoch_and_readers_catch_up() {
        let cell = PlanCell::new(0u64);
        let mut r = cell.reader();
        assert_eq!(*r.table(), 0);
        assert_eq!(cell.publish(7), 2);
        assert_eq!(r.sync(), 2);
        assert_eq!(*r.current(), 7);
        assert_eq!(cell.swaps(), 1);
    }

    #[test]
    fn reader_cache_pins_old_payload_until_synced() {
        let cell = PlanCell::new(1u64);
        let mut r = cell.reader();
        r.sync();
        cell.publish(2);
        // Un-synced reader still serves the pinned payload (drop-free:
        // the old Arc lives while anyone holds it).
        assert_eq!(*r.current(), 1);
        r.sync();
        assert_eq!(*r.current(), 2);
    }

    #[test]
    fn concurrent_readers_see_monotone_epochs_and_consistent_payloads() {
        // Payload (id, id * 3): a torn read would break the invariant.
        let cell = PlanCell::new((0u64, 0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut r = cell.reader();
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let e = r.sync();
                        assert!(e >= last, "epoch went backwards");
                        last = e;
                        let (id, check) = *r.current();
                        assert_eq!(check, id * 3, "torn payload");
                    }
                });
            }
            s.spawn(|| {
                for id in 1..=100u64 {
                    cell.publish((id, id * 3));
                }
            });
        });
        assert_eq!(cell.swaps(), 100);
        assert_eq!(cell.load().0, 100);
    }
}
