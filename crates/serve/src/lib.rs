// palb:lint-tier = lib
//! # palb-serve — the online serving layer
//!
//! Everything below `palb-core` reasons in *per-slot averages*: the
//! optimizer ingests a rate matrix and emits a [`Dispatch`] plan once per
//! slot. This crate is the layer that makes that plan answer **individual
//! requests** at wire speed:
//!
//! * [`table`] — compiles a plan into an immutable [`RouteTable`]: one
//!   alias-method sampler per `(class, front-end)` cell over its
//!   `(data center, server)` targets, O(1) and allocation-free per route,
//! * [`swap`] — [`PlanCell`], the epoch-published pointer that hot-swaps
//!   route tables atomically: readers run lock-free against a cached
//!   `Arc` and touch a mutex only in the instant a new plan lands,
//! * [`estimator`] — sharded streaming rate estimators (one shard per
//!   worker, per-`(class, front-end)` sliding window + EWMA, merged on
//!   snapshot) feeding mid-slot drift detection,
//! * [`dispatcher`] — the replay harness: worker threads route a
//!   seed-pure [`ReplayStream`](palb_workload::ReplayStream) through the
//!   live table while a background planner thread re-plans through
//!   [`ResilientPolicy`](palb_core::ResilientPolicy) on drift triggers
//!   and publishes boundary plans drop-free at slot edges.
//!
//! The concurrency protocol is model-checked under loom
//! (`tests/loom_swap.rs`) and the statistical routing contract — the
//! empirical per-cell mix converges to the plan's dispatch fractions — is
//! property-tested (`tests/routing_proptest.rs`).
//!
//! [`Dispatch`]: palb_core::Dispatch
//! [`RouteTable`]: table::RouteTable
//! [`PlanCell`]: swap::PlanCell

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dispatcher;
pub mod estimator;
pub mod swap;
pub mod table;

pub use dispatcher::{serve_replay, DriftOptions, ReplayReport, ServeOptions, ShiftSpec};
pub use estimator::{DriftMonitor, DriftVerdict, EstimatorConfig, ShardedEstimator};
pub use swap::{PlanCell, PlanReader};
pub use table::{Route, RouteTable};
