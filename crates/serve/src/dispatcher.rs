//! The live dispatcher: replaying slot traffic through hot-swapped plans.
//!
//! [`serve_replay`] is the serving loop the rest of the crate exists
//! for. Per trace slot it:
//!
//! 1. asks the **planner thread** (which owns the
//!    [`ResilientPolicy`] ladder and its warm-started `WorkspacePool`)
//!    for the slot's plan, compiles it to a [`RouteTable`], and publishes
//!    it through the [`PlanCell`] — the *boundary swap*, atomic and
//!    drop-free;
//! 2. fans the slot's [`ReplayStream`] across `threads` router workers.
//!    Each worker runs the allocation-free hot path: one epoch check
//!    ([`PlanReader::sync`](crate::swap::PlanReader::sync)), one seed-pure
//!    stream lookup, one alias-table route, one sharded estimator bump;
//! 3. worker 0 doubles as the drift sentinel: every
//!    [`DriftOptions::check_every`] requests it folds the merged
//!    estimator window ([`DriftMonitor`]) and, when the smoothed mix
//!    deviates from the active plan's reference rates, hands the
//!    estimated matrix to the planner thread — which re-solves in the
//!    background and publishes the replacement table mid-slot while the
//!    workers keep routing against the old plan until the instant the
//!    new one lands.
//!
//! Determinism contract: with drift disabled, `routed`/`shed`/mix counts
//! are bitwise identical across thread counts (the request partition is
//! by index range and every route is a pure function of `(seed, slot,
//! i)`). Drift re-plan *timing* is inherently schedule-dependent — the
//! sentinel reads live counters — so runs with drift enabled reconcile
//! exactly on totals but may split mix segments at different requests.
//!
//! [`ResilientPolicy`]: palb_core::ResilientPolicy
//! [`RouteTable`]: crate::table::RouteTable
//! [`PlanCell`]: crate::swap::PlanCell

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::Instant;

use palb_cluster::System;
use palb_core::obs::{names, Recorder};
use palb_core::{CoreError, Policy, ResilientOptions, ResilientPolicy, SlotContext};
use palb_obs::metrics::duration_bounds;
use palb_obs::sync::{Arc, AtomicU64, Mutex, Ordering};
use palb_obs::Histogram;
use palb_workload::replay::{mix64, ReplayStream};
use palb_workload::Trace;

use crate::estimator::{DriftMonitor, EstimatorConfig, ShardedEstimator};
use crate::swap::PlanCell;
use crate::table::{Route, RouteTable};

/// Salt folded into the per-request route word so routing randomness is
/// independent of the stream's cell-selection randomness.
const ROUTE_SALT: u64 = 0x8F0C_6B1D_2E3A_4455;

/// Minimum per-group sample count before its empirical mix participates
/// in divergence scoring (binomial noise below this drowns the signal).
const MIN_MIX_SAMPLES: u64 = 2_000;

/// Mid-slot drift detection tuning.
#[derive(Debug, Clone)]
pub struct DriftOptions {
    /// Aggregate routed requests between sentinel checks.
    pub check_every: u64,
    /// Window/EWMA/threshold tuning for the [`DriftMonitor`].
    pub estimator: EstimatorConfig,
    /// Re-plan budget per slot (the sentinel stops requesting after
    /// this many; 1 keeps mix accounting simple and re-plans cheap).
    pub max_replans_per_slot: u32,
}

impl Default for DriftOptions {
    fn default() -> Self {
        DriftOptions {
            check_every: 65_536,
            estimator: EstimatorConfig::default(),
            max_replans_per_slot: 1,
        }
    }
}

/// A scripted mid-slot rate shift (drift injection for experiments):
/// from request `at_fraction × requests_per_slot` of slot `slot`, the
/// stream draws from `rates` instead of the trace matrix.
#[derive(Debug, Clone)]
pub struct ShiftSpec {
    /// Slot the shift applies to.
    pub slot: usize,
    /// Fraction of the slot's requests served before the shift.
    pub at_fraction: f64,
    /// The shifted `rates[front_end][class]` matrix.
    pub rates: Vec<Vec<f64>>,
}

/// Configuration for [`serve_replay`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Router worker threads.
    pub threads: usize,
    /// Seed for the seed-pure request stream and route words.
    pub seed: u64,
    /// Requests replayed per trace slot.
    pub requests_per_slot: u64,
    /// Mid-slot drift detection; `None` disables the sentinel entirely.
    pub drift: Option<DriftOptions>,
    /// Scripted rate shift (usually paired with `drift`).
    pub shift: Option<ShiftSpec>,
    /// Route-latency sampling cadence (every Nth request; 0 disables
    /// sampling and the latency histogram stays empty).
    pub latency_sample_every: u64,
    /// Metrics sink (counters + route-latency histogram mirror).
    pub obs: Recorder,
    /// Options for the planner thread's [`ResilientPolicy`].
    pub planner: ResilientOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 1,
            seed: 0x5EED_CAFE,
            requests_per_slot: 1_000_000,
            drift: None,
            shift: None,
            latency_sample_every: 128,
            obs: Recorder::noop(),
            planner: ResilientOptions::default(),
        }
    }
}

/// Per-slot serving outcome.
#[derive(Debug, Clone)]
pub struct SlotServeStats {
    /// Trace slot index.
    pub slot: usize,
    /// Requests offered to the dispatcher.
    pub requests: u64,
    /// Requests routed to a server.
    pub routed: u64,
    /// Requests shed by the plan's admission control.
    pub shed: u64,
    /// Mid-slot re-plans published during the slot.
    pub drift_replans: u64,
    /// Worst per-category gap between the empirical routing mix and the
    /// active table's planned fractions, over groups with enough
    /// samples; `None` when no group qualified.
    pub mix_divergence: Option<f64>,
    /// Samples behind the divergence figure.
    pub mix_samples: u64,
}

/// Aggregate outcome of one [`serve_replay`] run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Router worker threads.
    pub threads: usize,
    /// Trace slots replayed.
    pub slots: usize,
    /// Total requests offered.
    pub requests: u64,
    /// Total requests routed to a server.
    pub routed: u64,
    /// Total requests shed.
    pub shed: u64,
    /// Wall-clock serving time (excludes planning; boundary plans are
    /// computed before each slot's clock starts).
    pub elapsed_seconds: f64,
    /// `routed / elapsed_seconds`.
    pub routed_per_second: f64,
    /// Route-latency samples taken.
    pub latency_samples: u64,
    /// Median sampled route latency.
    pub route_p50_seconds: Option<f64>,
    /// p99 sampled route latency.
    pub route_p99_seconds: Option<f64>,
    /// Slot-boundary table publications (must equal `slots`).
    pub boundary_swaps: u64,
    /// Mid-slot drift re-plans published.
    pub drift_replans: u64,
    /// Drift sentinel checks evaluated.
    pub drift_checks: u64,
    /// All publications seen by the plan cell (boundary + drift; the
    /// reconciliation invariant `total_swaps == boundary_swaps +
    /// drift_replans` is asserted by [`serve_replay`] itself).
    pub total_swaps: u64,
    /// Worst `mix_divergence` across slots (same qualification rule).
    pub max_mix_divergence: Option<f64>,
    /// Per-slot breakdown.
    pub per_slot: Vec<SlotServeStats>,
}

/// Work orders for the planner thread.
enum PlanRequest {
    /// Solve slot `slot` against the trace matrix and hand the table
    /// back for a boundary publish.
    Boundary { slot: usize },
    /// Mid-slot re-plan against estimated rates (flat `k × S + s`
    /// order); the planner publishes the result itself.
    Drift { slot: usize, estimates: Vec<f64> },
}

/// Estimated flat rates → `rates[front_end][class]` matrix for the
/// planner (clamping non-finite/negative estimates to idle).
fn estimates_to_matrix(estimates: &[f64], classes: usize, front_ends: usize) -> Vec<Vec<f64>> {
    let mut rates = vec![vec![0.0; classes]; front_ends];
    for k in 0..classes {
        for s in 0..front_ends {
            let est = estimates.get(k * front_ends + s).copied().unwrap_or(0.0);
            if est.is_finite() && est > 0.0 {
                rates[s][k] = est;
            }
        }
    }
    rates
}

/// Solves one matrix through the resilient ladder and compiles the
/// resulting plan.
fn plan_table(
    policy: &mut ResilientPolicy,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    obs: &Recorder,
) -> Result<RouteTable, CoreError> {
    let ctx = SlotContext::new(system, rates, slot, obs);
    let dispatch = policy.decide(&ctx)?;
    Ok(RouteTable::compile(&dispatch, rates, slot))
}

/// The background planner loop: owns the `ResilientPolicy` (and through
/// it the warm-started `WorkspacePool`) for the whole run, so every
/// boundary and drift solve warm-starts off the previous one.
#[allow(clippy::too_many_arguments)]
fn planner_loop(
    req_rx: mpsc::Receiver<PlanRequest>,
    boundary_tx: mpsc::Sender<Result<RouteTable, CoreError>>,
    cell: &PlanCell<RouteTable>,
    published: &Mutex<Vec<(u64, Arc<RouteTable>)>>,
    drift_replans: &AtomicU64,
    system: &System,
    trace: &Trace,
    opts: &ServeOptions,
) {
    let mut policy = ResilientPolicy::new(opts.planner.clone());
    let classes = system.num_classes();
    let front_ends = system.num_front_ends();
    while let Ok(req) = req_rx.recv() {
        match req {
            PlanRequest::Boundary { slot } => {
                let table = plan_table(&mut policy, system, trace.slot(slot), slot, &opts.obs);
                if boundary_tx.send(table).is_err() {
                    break;
                }
            }
            PlanRequest::Drift { slot, estimates } => {
                let rates = estimates_to_matrix(&estimates, classes, front_ends);
                // A failed re-plan is not fatal: the workers keep routing
                // against the still-valid boundary plan.
                if let Ok(table) = plan_table(&mut policy, system, &rates, slot, &opts.obs) {
                    let arc = Arc::new(table);
                    let epoch = cell.publish_arc(Arc::clone(&arc));
                    published
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((epoch, arc));
                    drift_replans.fetch_add(1, Ordering::Relaxed);
                    opts.obs.counter_add(names::DRIFT_REPLANS_TOTAL, &[], 1);
                }
            }
        }
    }
}

/// Drift-sentinel state carried by worker 0.
struct DriftSentinel {
    monitor: DriftMonitor,
    check_every: u64,
    sender: mpsc::Sender<PlanRequest>,
    slot: usize,
    budget: u32,
    checks: u64,
    requested: u64,
}

/// What one router worker hands back at slot end.
struct WorkerOut {
    routed: u64,
    shed: u64,
    /// `(epoch, per-mix-slot counts)` segments, one per table the worker
    /// routed against.
    segments: Vec<(u64, Vec<u64>)>,
    drift_checks: u64,
    latency_samples: u64,
}

/// One router worker's slot loop. The per-request path is the crate's
/// raison d'être: `sync` (one atomic load) → seed-pure stream lookup →
/// alias route → sharded estimator bump. Everything allocating (segment
/// flushes, drift checks) happens on epoch changes or the sentinel
/// cadence, never per request.
// palb:decision-path
#[allow(clippy::too_many_arguments)]
fn route_worker(
    cell: &PlanCell<RouteTable>,
    stream: &ReplayStream,
    est: &ShardedEstimator,
    shard: usize,
    range: std::ops::Range<u64>,
    route_salt: u64,
    latency_sample_every: u64,
    hist: &Histogram,
    obs: &Recorder,
    mut sentinel: Option<DriftSentinel>,
) -> WorkerOut {
    let mut reader = cell.reader();
    let mut mix_epoch = 0u64;
    let mut mix: Vec<u64> = Vec::new();
    let mut segments: Vec<(u64, Vec<u64>)> = Vec::new();
    let mut routed = 0u64;
    let mut shed = 0u64;
    let mut latency_samples = 0u64;
    let mut since_check = 0u64;
    for i in range {
        let epoch = reader.sync();
        if epoch != mix_epoch {
            if !mix.is_empty() {
                segments.push((mix_epoch, std::mem::take(&mut mix)));
            }
            mix = vec![0u64; reader.current().mix_len()];
            mix_epoch = epoch;
        }
        let (s, k) = stream.request(i);
        let word = mix64(route_salt ^ i);
        let sampled = latency_sample_every > 0 && i % latency_sample_every == 0;
        let (route, idx) = if sampled {
            // palb:allow(determinism): serve-layer latency histogram — the audited observability carve-out; the timing never feeds back into routing
            let t0 = Instant::now();
            let out = reader.current().route_indexed(k, s, word);
            let dt = t0.elapsed().as_secs_f64();
            hist.observe(dt);
            obs.observe(names::ROUTE_SECONDS, &[], dt);
            latency_samples += 1;
            out
        } else {
            reader.current().route_indexed(k, s, word)
        };
        mix[idx] += 1;
        est.record(shard, k, s);
        match route {
            Route::Target { .. } => routed += 1,
            Route::Shed => shed += 1,
        }
        if let Some(ctl) = sentinel.as_mut() {
            since_check += 1;
            if since_check >= ctl.check_every {
                since_check = 0;
                ctl.checks += 1;
                ctl.monitor.observe(est, stream.total_rate_at(i));
                if ctl.requested < ctl.budget as u64 {
                    let plan = reader.current().plan_rates();
                    if ctl.monitor.drifted(plan).is_some() {
                        let estimates = ctl.monitor.estimates().to_vec();
                        ctl.requested += 1;
                        if ctl
                            .sender
                            .send(PlanRequest::Drift {
                                slot: ctl.slot,
                                estimates,
                            })
                            .is_err()
                        {
                            // Planner gone; keep serving the current plan.
                            ctl.budget = 0;
                        }
                    }
                }
            }
        }
    }
    if !mix.is_empty() {
        segments.push((mix_epoch, mix));
    }
    let drift_checks = sentinel.map(|c| c.checks).unwrap_or(0);
    WorkerOut {
        routed,
        shed,
        segments,
        drift_checks,
        latency_samples,
    }
}

/// Scores merged mix segments against the tables they were routed by.
fn mix_divergence(
    segments: &BTreeMap<u64, Vec<u64>>,
    published: &[(u64, Arc<RouteTable>)],
) -> (Option<f64>, u64) {
    let mut worst: Option<f64> = None;
    let mut samples = 0u64;
    for (epoch, counts) in segments {
        let Some((_, table)) = published.iter().find(|(e, _)| e == epoch) else {
            continue;
        };
        for kk in 0..table.classes() {
            for ss in 0..table.front_ends() {
                let range = table.mix_range(kk, ss);
                let total: u64 = counts[range.clone()].iter().sum();
                if total < MIN_MIX_SAMPLES {
                    continue;
                }
                samples += total;
                for idx in range {
                    let emp = counts[idx] as f64 / total as f64;
                    let dev = (emp - table.mix_fraction(idx)).abs();
                    if worst.map(|w| dev > w).unwrap_or(true) {
                        worst = Some(dev);
                    }
                }
            }
        }
    }
    (worst, samples)
}

/// Replays `trace` through the live dispatcher against `system`.
///
/// See the [module docs](self) for the slot lifecycle. Errors surface
/// from option validation, a planner failure on a *boundary* plan (the
/// resilient ladder makes this effectively unreachable), or a worker
/// panic. The swap-reconciliation invariant (`total_swaps ==
/// boundary_swaps + drift_replans`) is checked before returning.
pub fn serve_replay(
    system: &System,
    trace: &Trace,
    opts: &ServeOptions,
) -> Result<ReplayReport, CoreError> {
    if opts.threads == 0 {
        return Err(CoreError::Model("serve: threads must be >= 1".into()));
    }
    if opts.requests_per_slot == 0 {
        return Err(CoreError::Model(
            "serve: requests_per_slot must be >= 1".into(),
        ));
    }
    let classes = system.num_classes();
    let front_ends = system.num_front_ends();
    if trace.classes() != classes || trace.front_ends() != front_ends {
        return Err(CoreError::Model(format!(
            "serve: trace shape {}x{} does not match system {}x{}",
            trace.front_ends(),
            trace.classes(),
            front_ends,
            classes
        )));
    }
    if let Some(shift) = &opts.shift {
        if shift.slot >= trace.slots() || !(0.0..=1.0).contains(&shift.at_fraction) {
            return Err(CoreError::Model(
                "serve: shift slot/fraction out of range".into(),
            ));
        }
    }

    let cell = PlanCell::new(RouteTable::empty(classes, front_ends, 0));
    let published: Mutex<Vec<(u64, Arc<RouteTable>)>> = Mutex::new(Vec::new());
    let drift_replans = AtomicU64::new(0);
    let hist = Histogram::with_bounds(duration_bounds());
    let (req_tx, req_rx) = mpsc::channel::<PlanRequest>();
    let (bnd_tx, bnd_rx) = mpsc::channel::<Result<RouteTable, CoreError>>();

    let cell_ref = &cell;
    let published_ref = &published;
    let drift_replans_ref = &drift_replans;
    let hist_ref = &hist;

    let mut boundary_swaps = 0u64;
    let mut drift_checks = 0u64;
    let mut latency_samples = 0u64;
    let mut requests_total = 0u64;
    let mut routed_total = 0u64;
    let mut shed_total = 0u64;
    let mut serving_seconds = 0f64;

    let per_slot = std::thread::scope(|scope| {
        let planner = scope.spawn(move || {
            planner_loop(
                req_rx,
                bnd_tx,
                cell_ref,
                published_ref,
                drift_replans_ref,
                system,
                trace,
                opts,
            )
        });
        let outcome = (|| -> Result<Vec<SlotServeStats>, CoreError> {
            let mut per_slot = Vec::with_capacity(trace.slots());
            for t in 0..trace.slots() {
                req_tx
                    .send(PlanRequest::Boundary { slot: t })
                    .map_err(|_| CoreError::WorkerPanic)?;
                let table = bnd_rx.recv().map_err(|_| CoreError::WorkerPanic)??;
                let arc = Arc::new(table);
                let epoch = cell.publish_arc(Arc::clone(&arc));
                published
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((epoch, arc));
                boundary_swaps += 1;
                opts.obs.counter_add(names::PLAN_SWAPS_TOTAL, &[], 1);

                let mut stream = match ReplayStream::for_slot(trace, t, opts.seed) {
                    Some(st) => st,
                    None => {
                        // An all-idle slot offers nothing; the boundary
                        // swap above still happened (swap-per-slot
                        // reconciliation holds).
                        per_slot.push(SlotServeStats {
                            slot: t,
                            requests: 0,
                            routed: 0,
                            shed: 0,
                            drift_replans: 0,
                            mix_divergence: None,
                            mix_samples: 0,
                        });
                        continue;
                    }
                };
                if let Some(shift) = opts.shift.as_ref().filter(|sh| sh.slot == t) {
                    let at = (shift.at_fraction * opts.requests_per_slot as f64) as u64;
                    stream = stream.with_shift(at, &shift.rates).ok_or_else(|| {
                        CoreError::Model("serve: shift matrix has no positive rate".into())
                    })?;
                }
                let stream_ref = &stream;

                let est = ShardedEstimator::new(classes, front_ends, opts.threads);
                let est_ref = &est;
                let drift_before = drift_replans.load(Ordering::Relaxed);
                let n = opts.requests_per_slot;
                let chunk = n.div_ceil(opts.threads as u64);
                let route_salt = mix64(opts.seed ^ ROUTE_SALT ^ t as u64);

                let slot_clock = Instant::now();
                let outs: Vec<WorkerOut> = std::thread::scope(|ws| {
                    let handles: Vec<_> = (0..opts.threads)
                        .map(|w| {
                            let lo = (w as u64 * chunk).min(n);
                            let hi = ((w as u64 + 1) * chunk).min(n);
                            let sentinel = match (&opts.drift, w) {
                                (Some(d), 0) => Some(DriftSentinel {
                                    monitor: DriftMonitor::new(
                                        classes * front_ends,
                                        d.estimator.clone(),
                                    ),
                                    // The sentinel only sees its own
                                    // chunk; scale the global cadence.
                                    check_every: (d.check_every / opts.threads as u64).max(1),
                                    sender: req_tx.clone(),
                                    slot: t,
                                    budget: d.max_replans_per_slot,
                                    checks: 0,
                                    requested: 0,
                                }),
                                _ => None,
                            };
                            ws.spawn(move || {
                                route_worker(
                                    cell_ref,
                                    stream_ref,
                                    est_ref,
                                    w,
                                    lo..hi,
                                    route_salt,
                                    opts.latency_sample_every,
                                    hist_ref,
                                    &opts.obs,
                                    sentinel,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().map_err(|_| CoreError::WorkerPanic))
                        .collect::<Result<Vec<_>, _>>()
                })?;
                serving_seconds += slot_clock.elapsed().as_secs_f64();

                let mut slot_routed = 0u64;
                let mut slot_shed = 0u64;
                let mut merged: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
                for out in outs {
                    slot_routed += out.routed;
                    slot_shed += out.shed;
                    drift_checks += out.drift_checks;
                    latency_samples += out.latency_samples;
                    for (epoch, counts) in out.segments {
                        let entry = merged.entry(epoch).or_insert_with(|| vec![0; counts.len()]);
                        if entry.len() == counts.len() {
                            for (a, b) in entry.iter_mut().zip(counts.iter()) {
                                *a += b;
                            }
                        }
                    }
                }
                let slot_drift = drift_replans
                    .load(Ordering::Relaxed)
                    .saturating_sub(drift_before);
                let (divergence, mix_samples) = {
                    let log = published
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    mix_divergence(&merged, &log)
                };
                opts.obs.counter_add(names::ROUTES_TOTAL, &[], slot_routed);
                opts.obs
                    .counter_add(names::ROUTES_SHED_TOTAL, &[], slot_shed);
                requests_total += n;
                routed_total += slot_routed;
                shed_total += slot_shed;
                per_slot.push(SlotServeStats {
                    slot: t,
                    requests: n,
                    routed: slot_routed,
                    shed: slot_shed,
                    drift_replans: slot_drift,
                    mix_divergence: divergence,
                    mix_samples,
                });
            }
            Ok(per_slot)
        })();
        // Dropping the request sender (and the per-slot clones, all gone
        // with the joined workers) shuts the planner down.
        drop(req_tx);
        let joined = planner.join();
        match (outcome, joined) {
            (Ok(v), Ok(())) => Ok(v),
            (Err(e), _) => Err(e),
            (Ok(_), Err(_)) => Err(CoreError::WorkerPanic),
        }
    })?;

    let drift_total = drift_replans.load(Ordering::Relaxed);
    opts.obs
        .counter_add(names::DRIFT_CHECKS_TOTAL, &[], drift_checks);
    let total_swaps = cell.swaps();
    if total_swaps != boundary_swaps + drift_total {
        return Err(CoreError::Model(format!(
            "serve: swap reconciliation failed: {total_swaps} swaps vs {boundary_swaps} boundary + {drift_total} drift"
        )));
    }
    let max_mix_divergence = per_slot
        .iter()
        .filter_map(|s| s.mix_divergence)
        .fold(None, |acc: Option<f64>, d| {
            Some(acc.map_or(d, |a| a.max(d)))
        });
    Ok(ReplayReport {
        threads: opts.threads,
        slots: trace.slots(),
        requests: requests_total,
        routed: routed_total,
        shed: shed_total,
        elapsed_seconds: serving_seconds,
        routed_per_second: if serving_seconds > 0.0 {
            routed_total as f64 / serving_seconds
        } else {
            0.0
        },
        latency_samples,
        route_p50_seconds: hist.quantile(0.5),
        route_p99_seconds: hist.quantile(0.99),
        boundary_swaps,
        drift_replans: drift_total,
        drift_checks,
        total_swaps,
        max_mix_divergence,
        per_slot,
    })
}
