// palb:lint-tier = lib
//! # palb-queueing — queueing analytics and discrete-event simulation
//!
//! The paper's optimizer treats every (request class, server) VM as an
//! **M/M/1 queue** whose service rate is the VM's CPU share times the
//! server's full-capacity rate for that class (paper Eq. 1). This crate
//! provides:
//!
//! * [`Mm1`] / [`expected_delay`] — the analytic model and its inversions
//!   (minimum CPU share for a deadline, maximum rate under a share),
//! * [`Mmc`] — an Erlang-C extension used by the pooling ablation,
//! * [`des`] — a deterministic event-driven simulator of FCFS queue
//!   networks, used to validate Eq. 1 and to replay optimizer decisions at
//!   per-request granularity,
//! * [`lindley`] — a fast Lindley-recursion M/M/1 sampler cross-checking
//!   the DES,
//! * [`stats`] — Welford moments and percentile queries.
//!
//! ```
//! use palb_queueing::{expected_delay, Mm1};
//!
//! // A VM with 50% of a capacity-1 server whose full rate is 10 req/h,
//! // fed 3 req/h, responds in 1/(0.5·10 − 3) = 0.5 h on average.
//! assert_eq!(expected_delay(0.5, 1.0, 10.0, 3.0), 0.5);
//! assert!(Mm1::new(3.0, 5.0).is_stable());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod des;
pub mod lindley;
mod mg1;
mod mm1;
mod mmc;
pub mod stats;

pub use des::{simulate_mm1, simulate_network, EventQueue, QueueResult, QueueSpec};
pub use lindley::{simulate_mm1_lindley, LindleyResult};
pub use mg1::{simulate_mg1_lindley, Mg1, ServiceDist};
pub use mm1::{expected_delay, max_rate_for_deadline, required_share, Mm1};
pub use mmc::Mmc;
pub use stats::{SampleStats, Welford};
