//! M/G/1 analytics (Pollaczek–Khinchine) and general-service simulation.
//!
//! The paper's Eq. 1 assumes exponential service. Real request service
//! times rarely are, so this module provides the Pollaczek–Khinchine
//! mean-wait formula for arbitrary service-time variability and a
//! distribution-agnostic Lindley-recursion simulator, letting the bench
//! harness quantify how sensitive the optimizer's promises are to the
//! M/M/1 assumption.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::SampleStats;

/// Service-time distributions with mean `1/µ`, parameterized by their
/// squared coefficient of variation `C² = Var[S]/E[S]²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceDist {
    /// Deterministic service (`C² = 0`).
    Deterministic,
    /// Erlang-`k` (`C² = 1/k`), `k ≥ 1`.
    Erlang(u32),
    /// Exponential (`C² = 1`) — the paper's assumption.
    Exponential,
    /// Balanced two-phase hyperexponential with the given `C² > 1`.
    Hyperexponential {
        /// Squared coefficient of variation (must exceed 1).
        scv: f64,
    },
}

impl ServiceDist {
    /// The squared coefficient of variation of the distribution.
    pub fn scv(&self) -> f64 {
        match *self {
            ServiceDist::Deterministic => 0.0,
            ServiceDist::Erlang(k) => {
                assert!(k >= 1, "Erlang shape must be >= 1");
                1.0 / f64::from(k)
            }
            ServiceDist::Exponential => 1.0,
            ServiceDist::Hyperexponential { scv } => {
                assert!(scv > 1.0, "hyperexponential needs C^2 > 1, got {scv}");
                scv
            }
        }
    }

    /// Samples one service time with mean `mean`.
    pub fn sample(&self, mean: f64, rng: &mut StdRng) -> f64 {
        debug_assert!(mean > 0.0);
        match *self {
            ServiceDist::Deterministic => mean,
            ServiceDist::Exponential => sample_exp(mean, rng),
            ServiceDist::Erlang(k) => {
                let phase_mean = mean / f64::from(k);
                (0..k).map(|_| sample_exp(phase_mean, rng)).sum()
            }
            ServiceDist::Hyperexponential { scv } => {
                // Balanced-means H2: two exponential branches chosen with
                // probability p / (1-p), tuned so E[S] = mean and the
                // squared coefficient of variation equals `scv`.
                let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
                let (prob, mean_branch) = if rng.gen_bool(p) {
                    (p, mean / (2.0 * p))
                } else {
                    (1.0 - p, mean / (2.0 * (1.0 - p)))
                };
                let _ = prob;
                sample_exp(mean_branch, rng)
            }
        }
    }
}

fn sample_exp(mean: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(0.0_f64..1.0);
    -mean * (1.0 - u).ln()
}

/// An M/G/1 queue: Poisson arrivals at `lambda`, general service with rate
/// `mu` (mean `1/µ`) and the given distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mg1 {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate µ.
    pub mu: f64,
    /// Service-time distribution.
    pub dist: ServiceDist,
}

impl Mg1 {
    /// Creates the queue; panics on degenerate rates.
    pub fn new(lambda: f64, mu: f64, dist: ServiceDist) -> Self {
        assert!(lambda >= 0.0 && mu > 0.0, "bad rates");
        Mg1 { lambda, mu, dist }
    }

    /// Utilization `ρ = λ/µ`.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Stability (`ρ < 1`).
    pub fn is_stable(&self) -> bool {
        self.rho() < 1.0
    }

    /// Pollaczek–Khinchine mean waiting time:
    /// `W_q = ρ·(1 + C²) / (2·µ·(1 − ρ))`.
    pub fn mean_wait(&self) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        let rho = self.rho();
        rho * (1.0 + self.dist.scv()) / (2.0 * self.mu * (1.0 - rho))
    }

    /// Mean sojourn time `R = W_q + 1/µ`.
    pub fn mean_sojourn(&self) -> f64 {
        self.mean_wait() + 1.0 / self.mu
    }
}

/// Simulates an M/G/1 queue by the Lindley recursion with the given
/// service distribution. Deterministic per seed.
pub fn simulate_mg1_lindley(
    lambda: f64,
    mu: f64,
    dist: ServiceDist,
    customers: usize,
    warmup: usize,
    seed: u64,
) -> SampleStats {
    assert!(lambda > 0.0 && mu > 0.0 && warmup < customers);
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_service = 1.0 / mu;
    let mean_interarrival = 1.0 / lambda;
    let mut sojourn = SampleStats::new();
    let mut w = 0.0_f64;
    for i in 0..customers {
        let s = dist.sample(mean_service, &mut rng);
        if i >= warmup {
            sojourn.push(w + s);
        }
        let a = sample_exp(mean_interarrival, &mut rng);
        w = (w + s - a).max(0.0);
    }
    sojourn
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;

    #[test]
    fn exponential_reduces_to_mm1() {
        let g = Mg1::new(6.0, 10.0, ServiceDist::Exponential);
        let m = Mm1::new(6.0, 10.0);
        assert!((g.mean_sojourn() - m.mean_sojourn()).abs() < 1e-12);
        assert_eq!(g.dist.scv(), 1.0);
    }

    #[test]
    fn deterministic_halves_the_wait() {
        let exp = Mg1::new(6.0, 10.0, ServiceDist::Exponential);
        let det = Mg1::new(6.0, 10.0, ServiceDist::Deterministic);
        assert!((det.mean_wait() - 0.5 * exp.mean_wait()).abs() < 1e-12);
    }

    #[test]
    fn variability_ordering() {
        let mk = |d| Mg1::new(7.0, 10.0, d).mean_sojourn();
        let det = mk(ServiceDist::Deterministic);
        let er2 = mk(ServiceDist::Erlang(2));
        let exp = mk(ServiceDist::Exponential);
        let hyp = mk(ServiceDist::Hyperexponential { scv: 4.0 });
        assert!(det < er2 && er2 < exp && exp < hyp);
    }

    #[test]
    fn unstable_diverges() {
        let g = Mg1::new(11.0, 10.0, ServiceDist::Exponential);
        assert_eq!(g.mean_wait(), f64::INFINITY);
    }

    #[test]
    fn sampled_means_match_request() {
        let mut rng = StdRng::seed_from_u64(9);
        for dist in [
            ServiceDist::Deterministic,
            ServiceDist::Erlang(3),
            ServiceDist::Exponential,
            ServiceDist::Hyperexponential { scv: 3.0 },
        ] {
            let n = 120_000;
            let mean: f64 = (0..n).map(|_| dist.sample(0.25, &mut rng)).sum::<f64>() / n as f64;
            assert!((mean - 0.25).abs() < 0.01, "{dist:?}: sampled mean {mean}");
        }
    }

    #[test]
    fn hyperexponential_scv_is_realized() {
        let mut rng = StdRng::seed_from_u64(21);
        let dist = ServiceDist::Hyperexponential { scv: 4.0 };
        let n = 400_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(1.0, &mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        let scv = var / (mean * mean);
        assert!((scv - 4.0).abs() < 0.3, "realized C^2 = {scv}");
    }

    #[test]
    fn lindley_matches_pollaczek_khinchine() {
        for dist in [
            ServiceDist::Deterministic,
            ServiceDist::Erlang(2),
            ServiceDist::Exponential,
            ServiceDist::Hyperexponential { scv: 3.0 },
        ] {
            let analytic = Mg1::new(7.0, 10.0, dist).mean_sojourn();
            let sim = simulate_mg1_lindley(7.0, 10.0, dist, 600_000, 20_000, 5);
            let rel = (sim.mean() - analytic).abs() / analytic;
            assert!(rel < 0.05, "{dist:?}: sim {} vs P-K {analytic}", sim.mean());
        }
    }
}
