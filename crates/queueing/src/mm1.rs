//! Analytic M/M/1 queue formulas, including the paper's Eq. 1 delay model
//! for a class-`k` VM that owns a CPU share `φ` of a server with capacity
//! `C` and full-capacity service rate `µ_k`:
//!
//! ```text
//!   R_k = 1 / (φ_k · C · µ_k − λ_k)
//! ```

/// An M/M/1 queue with Poisson arrivals at rate `lambda` and exponential
/// service at rate `mu` (same time unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate µ.
    pub mu: f64,
}

impl Mm1 {
    /// Creates the queue, panicking on non-finite or negative rates.
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda.is_finite() && lambda >= 0.0, "bad lambda {lambda}");
        assert!(mu.is_finite() && mu > 0.0, "bad mu {mu}");
        Mm1 { lambda, mu }
    }

    /// Utilization `ρ = λ/µ`.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Whether the queue is stable (`λ < µ`).
    pub fn is_stable(&self) -> bool {
        self.lambda < self.mu
    }

    /// Mean sojourn (response) time `R = 1/(µ − λ)`; `+inf` when unstable.
    pub fn mean_sojourn(&self) -> f64 {
        if self.is_stable() {
            1.0 / (self.mu - self.lambda)
        } else {
            f64::INFINITY
        }
    }

    /// Mean waiting time in queue `W = ρ/(µ − λ)`.
    pub fn mean_wait(&self) -> f64 {
        if self.is_stable() {
            self.rho() / (self.mu - self.lambda)
        } else {
            f64::INFINITY
        }
    }

    /// Mean number in system `L = ρ/(1 − ρ)` (Little's law check:
    /// `L = λ·R`).
    pub fn mean_number(&self) -> f64 {
        if self.is_stable() {
            self.rho() / (1.0 - self.rho())
        } else {
            f64::INFINITY
        }
    }

    /// P(sojourn > t) = `e^{−(µ−λ)t}` — the sojourn time of a stable M/M/1
    /// is exponential with rate `µ − λ`.
    pub fn prob_sojourn_exceeds(&self, t: f64) -> f64 {
        if !self.is_stable() {
            return 1.0;
        }
        (-(self.mu - self.lambda) * t).exp()
    }
}

/// The paper's Eq. 1: expected delay of class-`k` requests on a server of
/// capacity `c` when the class VM holds CPU share `phi` and the class's
/// full-capacity service rate is `mu_k`. Returns `+inf` when the implied
/// queue is unstable.
pub fn expected_delay(phi: f64, c: f64, mu_k: f64, lambda: f64) -> f64 {
    let rate = phi * c * mu_k;
    if rate > lambda {
        1.0 / (rate - lambda)
    } else {
        f64::INFINITY
    }
}

/// Inverse of Eq. 1 in `φ`: the minimum CPU share that keeps the mean delay
/// of `lambda` at or below `deadline`. Returns `None` for non-positive
/// deadlines.
pub fn required_share(lambda: f64, deadline: f64, c: f64, mu_k: f64) -> Option<f64> {
    if deadline <= 0.0 || c <= 0.0 || mu_k <= 0.0 {
        return None;
    }
    Some((lambda + 1.0 / deadline) / (c * mu_k))
}

/// Inverse of Eq. 1 in `λ`: the largest arrival rate a VM with share `phi`
/// can carry while keeping mean delay ≤ `deadline`. Clamped at 0.
pub fn max_rate_for_deadline(phi: f64, c: f64, mu_k: f64, deadline: f64) -> f64 {
    if deadline <= 0.0 {
        return 0.0;
    }
    (phi * c * mu_k - 1.0 / deadline).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_threshold() {
        assert!(Mm1::new(0.9, 1.0).is_stable());
        assert!(!Mm1::new(1.0, 1.0).is_stable());
        assert!(!Mm1::new(1.5, 1.0).is_stable());
    }

    #[test]
    fn sojourn_matches_closed_form() {
        let q = Mm1::new(3.0, 5.0);
        assert!((q.mean_sojourn() - 0.5).abs() < 1e-12);
        assert!((q.mean_wait() - 0.3).abs() < 1e-12);
        assert!((q.mean_number() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn littles_law_holds() {
        let q = Mm1::new(7.0, 11.0);
        assert!((q.mean_number() - q.lambda * q.mean_sojourn()).abs() < 1e-12);
    }

    #[test]
    fn unstable_queue_diverges() {
        let q = Mm1::new(2.0, 1.0);
        assert_eq!(q.mean_sojourn(), f64::INFINITY);
        assert_eq!(q.prob_sojourn_exceeds(1.0), 1.0);
    }

    #[test]
    fn sojourn_tail_is_exponential() {
        let q = Mm1::new(1.0, 3.0);
        // rate = 2; P(T > 0.5) = e^{-1}
        assert!((q.prob_sojourn_exceeds(0.5) - (-1.0_f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn eq1_expected_delay() {
        // phi=0.5, C=1, mu=10, lambda=3 -> rate 5, delay 1/2.
        assert!((expected_delay(0.5, 1.0, 10.0, 3.0) - 0.5).abs() < 1e-12);
        assert_eq!(expected_delay(0.2, 1.0, 10.0, 3.0), f64::INFINITY);
    }

    #[test]
    fn required_share_inverts_eq1() {
        let lambda = 4.0;
        let d = 0.25;
        let phi = required_share(lambda, d, 1.0, 10.0).unwrap();
        let delay = expected_delay(phi, 1.0, 10.0, lambda);
        assert!((delay - d).abs() < 1e-9);
        assert_eq!(required_share(lambda, 0.0, 1.0, 10.0), None);
    }

    #[test]
    fn max_rate_inverts_eq1() {
        let phi = 0.6;
        let d = 0.5;
        let lam = max_rate_for_deadline(phi, 1.0, 10.0, d);
        assert!((expected_delay(phi, 1.0, 10.0, lam) - d).abs() < 1e-9);
        // Tiny share: clamped at zero.
        assert_eq!(max_rate_for_deadline(0.01, 1.0, 10.0, 0.5), 0.0);
    }
}
