//! Analytic M/M/c (Erlang-C) queue — an extension beyond the paper's M/M/1
//! model, used by the ablation benches to quantify how much the paper's
//! "one VM per class per server" partitioning loses versus pooling the
//! same aggregate capacity in a single multi-server queue.

use palb_num::is_zero;

/// An M/M/c queue: Poisson arrivals at rate `lambda`, `c` parallel servers,
/// each serving at rate `mu`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mmc {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Per-server service rate µ.
    pub mu: f64,
    /// Number of servers.
    pub servers: usize,
}

impl Mmc {
    /// Creates the queue; panics on degenerate parameters.
    pub fn new(lambda: f64, mu: f64, servers: usize) -> Self {
        assert!(lambda.is_finite() && lambda >= 0.0, "bad lambda {lambda}");
        assert!(mu.is_finite() && mu > 0.0, "bad mu {mu}");
        assert!(servers >= 1, "need at least one server");
        Mmc {
            lambda,
            mu,
            servers,
        }
    }

    /// Offered load `a = λ/µ` (in Erlangs).
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Utilization per server `ρ = λ/(cµ)`.
    pub fn rho(&self) -> f64 {
        self.lambda / (self.servers as f64 * self.mu)
    }

    /// Whether the queue is stable (`ρ < 1`).
    pub fn is_stable(&self) -> bool {
        self.rho() < 1.0
    }

    /// Erlang-C: the probability an arriving request must wait.
    ///
    /// Computed with the numerically stable recurrence on the Erlang-B
    /// blocking probability: `B(0) = 1`, `B(k) = a·B(k−1) / (k + a·B(k−1))`,
    /// then `C = B / (1 − ρ(1 − B))`.
    pub fn prob_wait(&self) -> f64 {
        if !self.is_stable() {
            return 1.0;
        }
        let a = self.offered_load();
        if is_zero(a) {
            return 0.0;
        }
        let mut b = 1.0;
        for k in 1..=self.servers {
            b = a * b / (k as f64 + a * b);
        }
        let rho = self.rho();
        b / (1.0 - rho * (1.0 - b))
    }

    /// Mean waiting time in queue `W_q = C(c, a) / (cµ − λ)`.
    pub fn mean_wait(&self) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        self.prob_wait() / (self.servers as f64 * self.mu - self.lambda)
    }

    /// Mean sojourn time `R = W_q + 1/µ`.
    pub fn mean_sojourn(&self) -> f64 {
        self.mean_wait() + 1.0 / self.mu
    }

    /// Mean number in system via Little's law.
    pub fn mean_number(&self) -> f64 {
        self.lambda * self.mean_sojourn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;

    #[test]
    fn single_server_reduces_to_mm1() {
        let lambda = 0.7;
        let mu = 1.0;
        let mmc = Mmc::new(lambda, mu, 1);
        let mm1 = Mm1::new(lambda, mu);
        assert!((mmc.mean_sojourn() - mm1.mean_sojourn()).abs() < 1e-10);
        // Erlang-C with one server equals the utilization ρ.
        assert!((mmc.prob_wait() - 0.7).abs() < 1e-10);
    }

    #[test]
    fn known_erlang_c_value() {
        // Textbook case: c = 2, a = 1 (ρ = 0.5) -> C = 1/3.
        let q = Mmc::new(1.0, 1.0, 2);
        assert!(
            (q.prob_wait() - 1.0 / 3.0).abs() < 1e-10,
            "{}",
            q.prob_wait()
        );
    }

    #[test]
    fn instability_detected() {
        let q = Mmc::new(3.0, 1.0, 2);
        assert!(!q.is_stable());
        assert_eq!(q.mean_wait(), f64::INFINITY);
        assert_eq!(q.prob_wait(), 1.0);
    }

    #[test]
    fn pooling_beats_partitioning() {
        // The economy-of-scale fact the ablation bench measures: one M/M/2
        // with rate µ each beats two separate M/M/1s fed λ/2 each.
        let lambda = 1.6;
        let mu = 1.0;
        let pooled = Mmc::new(lambda, mu, 2).mean_sojourn();
        let split = Mm1::new(lambda / 2.0, mu).mean_sojourn();
        assert!(pooled < split, "pooled {pooled} should beat split {split}");
    }

    #[test]
    fn zero_arrivals_never_wait() {
        let q = Mmc::new(0.0, 1.0, 3);
        assert_eq!(q.prob_wait(), 0.0);
        assert!((q.mean_sojourn() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_servers_shorten_waits() {
        let base = Mmc::new(2.5, 1.0, 3);
        let bigger = Mmc::new(2.5, 1.0, 6);
        assert!(bigger.mean_wait() < base.mean_wait());
    }
}
