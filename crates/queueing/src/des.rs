//! Discrete-event simulation of FCFS queueing networks.
//!
//! Used to *validate* the analytic M/M/1 abstraction the optimizer relies on
//! (paper Eq. 1) and to replay optimizer decisions at per-request
//! granularity: each (class, server) VM in the paper's system is an
//! independent M/M/1 queue whose service rate is the VM's CPU share times
//! the server's full-capacity rate.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};

use crate::stats::SampleStats;

/// A time-stamped event in the priority queue. Ties break by insertion
/// sequence so the simulation is fully deterministic for a given seed.
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Minimal deterministic future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute `time`.
    pub fn push(&mut self, time: f64, event: E) {
        debug_assert!(time.is_finite(), "scheduling at non-finite time");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Configuration of one FCFS single-server queue in the network.
#[derive(Debug, Clone, Copy)]
pub struct QueueSpec {
    /// Poisson arrival rate λ (may be 0 for an idle VM).
    pub arrival_rate: f64,
    /// Exponential service rate µ (> 0).
    pub service_rate: f64,
}

/// Per-queue simulation output.
#[derive(Debug, Clone, Default)]
pub struct QueueResult {
    /// Sojourn (response) times of requests completed after warm-up.
    pub sojourn: SampleStats,
    /// Requests completed after warm-up.
    pub completed: u64,
    /// Fraction of post-warm-up time the server was busy.
    pub utilization: f64,
}

struct QueueState {
    spec: QueueSpec,
    fifo: VecDeque<f64>,
    busy: bool,
    busy_since: f64,
    busy_time: f64,
    result: QueueResult,
}

enum Ev {
    Arrival(usize),
    Departure(usize),
}

/// Simulates a network of independent FCFS queues for `horizon` time units,
/// discarding all requests that *complete* before `warmup`.
///
/// Deterministic for a fixed `seed`.
pub fn simulate_network(
    specs: &[QueueSpec],
    horizon: f64,
    warmup: f64,
    seed: u64,
) -> Vec<QueueResult> {
    assert!(horizon > warmup && warmup >= 0.0, "bad horizon/warmup");
    for (i, s) in specs.iter().enumerate() {
        assert!(
            s.arrival_rate >= 0.0 && s.service_rate > 0.0,
            "queue {i}: bad rates"
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = EventQueue::new();
    let mut queues: Vec<QueueState> = specs
        .iter()
        .map(|&spec| QueueState {
            spec,
            fifo: VecDeque::new(),
            busy: false,
            busy_since: 0.0,
            busy_time: 0.0,
            result: QueueResult::default(),
        })
        .collect();

    // Prime first arrivals.
    for (i, q) in queues.iter().enumerate() {
        if q.spec.arrival_rate > 0.0 {
            // palb:allow(unwrap): guarded by the positivity check above
            let exp = Exp::new(q.spec.arrival_rate).unwrap();
            events.push(exp.sample(&mut rng), Ev::Arrival(i));
        }
    }

    while let Some((t, ev)) = events.pop() {
        if t > horizon {
            break;
        }
        match ev {
            Ev::Arrival(i) => {
                let q = &mut queues[i];
                // Next arrival of this queue's Poisson stream.
                // palb:allow(unwrap): this queue already produced an arrival, so its rate is positive
                let exp_a = Exp::new(q.spec.arrival_rate).unwrap();
                events.push(t + exp_a.sample(&mut rng), Ev::Arrival(i));

                q.fifo.push_back(t);
                if !q.busy {
                    q.busy = true;
                    q.busy_since = t;
                    // palb:allow(unwrap): QueueSpec validation guarantees a positive service rate
                    let exp_s = Exp::new(q.spec.service_rate).unwrap();
                    events.push(t + exp_s.sample(&mut rng), Ev::Departure(i));
                }
            }
            Ev::Departure(i) => {
                let q = &mut queues[i];
                // palb:allow(unwrap): a departure is only scheduled for a non-empty queue
                let arrived = q.fifo.pop_front().expect("departure from an empty queue");
                if t >= warmup {
                    q.result.sojourn.push(t - arrived);
                    q.result.completed += 1;
                }
                if let Some(_next) = q.fifo.front() {
                    // palb:allow(unwrap): QueueSpec validation guarantees a positive service rate
                    let exp_s = Exp::new(q.spec.service_rate).unwrap();
                    events.push(t + exp_s.sample(&mut rng), Ev::Departure(i));
                } else {
                    q.busy = false;
                    // Accumulate the busy stretch that overlaps post-warmup.
                    let start = q.busy_since.max(warmup);
                    if t > start {
                        q.busy_time += t - start;
                    }
                }
            }
        }
    }

    let measured = horizon - warmup;
    queues
        .into_iter()
        .map(|mut q| {
            // Close out a busy period still open at the horizon.
            if q.busy {
                let start = q.busy_since.max(warmup);
                if horizon > start {
                    q.busy_time += horizon - start;
                }
            }
            q.result.utilization = if measured > 0.0 {
                (q.busy_time / measured).min(1.0)
            } else {
                0.0
            };
            q.result
        })
        .collect()
}

/// Convenience: simulate a single M/M/1 queue.
pub fn simulate_mm1(lambda: f64, mu: f64, horizon: f64, warmup: f64, seed: u64) -> QueueResult {
    simulate_network(
        &[QueueSpec {
            arrival_rate: lambda,
            service_rate: mu,
        }],
        horizon,
        warmup,
        seed,
    )
    .pop()
    // palb:allow(unwrap): simulate() returns exactly one result for the one queue passed
    .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;

    #[test]
    fn event_queue_orders_by_time_then_seq() {
        let mut q = EventQueue::new();
        q.push(2.0, "b");
        q.push(1.0, "a");
        q.push(2.0, "c"); // same time as "b", inserted later
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn mm1_mean_sojourn_matches_analytic() {
        let lambda = 7.0;
        let mu = 10.0;
        let r = simulate_mm1(lambda, mu, 20_000.0, 1_000.0, 42);
        let analytic = Mm1::new(lambda, mu).mean_sojourn();
        let ci = 4.0 * r.sojourn.ci95_half_width();
        assert!(
            (r.sojourn.mean() - analytic).abs() < ci.max(0.02 * analytic),
            "sim {} vs analytic {analytic} (ci {ci})",
            r.sojourn.mean()
        );
    }

    #[test]
    fn mm1_utilization_matches_rho() {
        let r = simulate_mm1(3.0, 10.0, 50_000.0, 1_000.0, 7);
        assert!(
            (r.utilization - 0.3).abs() < 0.02,
            "utilization {}",
            r.utilization
        );
    }

    #[test]
    fn determinism_for_fixed_seed() {
        let a = simulate_mm1(5.0, 8.0, 500.0, 50.0, 123);
        let b = simulate_mm1(5.0, 8.0, 500.0, 50.0, 123);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.sojourn.mean(), b.sojourn.mean());
    }

    #[test]
    fn different_seeds_differ() {
        let a = simulate_mm1(5.0, 8.0, 500.0, 50.0, 1);
        let b = simulate_mm1(5.0, 8.0, 500.0, 50.0, 2);
        assert_ne!(a.sojourn.mean(), b.sojourn.mean());
    }

    #[test]
    fn network_queues_are_independent() {
        let specs = [
            QueueSpec {
                arrival_rate: 2.0,
                service_rate: 10.0,
            },
            QueueSpec {
                arrival_rate: 8.0,
                service_rate: 10.0,
            },
        ];
        let rs = simulate_network(&specs, 20_000.0, 1_000.0, 99);
        let a0 = Mm1::new(2.0, 10.0).mean_sojourn();
        let a1 = Mm1::new(8.0, 10.0).mean_sojourn();
        assert!((rs[0].sojourn.mean() - a0).abs() < 0.05 * a0.max(0.1));
        assert!((rs[1].sojourn.mean() - a1).abs() < 0.08 * a1);
        // Heavier queue has longer sojourns.
        assert!(rs[1].sojourn.mean() > rs[0].sojourn.mean());
    }

    #[test]
    fn idle_queue_produces_nothing() {
        let rs = simulate_network(
            &[QueueSpec {
                arrival_rate: 0.0,
                service_rate: 5.0,
            }],
            100.0,
            0.0,
            5,
        );
        assert_eq!(rs[0].completed, 0);
        assert_eq!(rs[0].utilization, 0.0);
    }

    #[test]
    fn completed_count_tracks_throughput() {
        // Stable queue: post-warmup completions ≈ λ · (horizon − warmup).
        let lambda = 4.0;
        let r = simulate_mm1(lambda, 10.0, 10_000.0, 500.0, 11);
        let expect = lambda * 9_500.0;
        let tol = 0.05 * expect;
        assert!(
            (r.completed as f64 - expect).abs() < tol,
            "completed {} vs {expect}",
            r.completed
        );
    }
}
