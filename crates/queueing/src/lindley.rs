//! Fast customer-driven M/M/1 simulation via the Lindley recursion:
//!
//! ```text
//!   W₀ = 0,    W_{n+1} = max(0, W_n + S_n − A_{n+1})
//! ```
//!
//! where `S` are service times and `A` interarrival times. Tens of millions
//! of customers per second with no event queue — used as an independent
//! cross-check of the event-driven simulator in [`crate::des`] and as the
//! fast path for large per-request TUF replays.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};

use crate::stats::SampleStats;

/// Output of a Lindley-recursion run.
#[derive(Debug, Clone)]
pub struct LindleyResult {
    /// Sojourn times (waiting + service) of measured customers.
    pub sojourn: SampleStats,
}

/// Simulates `customers` arrivals through an M/M/1 queue, discarding the
/// first `warmup_customers` from the statistics. Deterministic per seed.
pub fn simulate_mm1_lindley(
    lambda: f64,
    mu: f64,
    customers: usize,
    warmup_customers: usize,
    seed: u64,
) -> LindleyResult {
    assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
    assert!(warmup_customers < customers, "warm-up swallows the run");
    let mut rng = StdRng::seed_from_u64(seed);
    // palb:allow(unwrap): rates were just asserted positive
    let interarrival = Exp::new(lambda).unwrap();
    // palb:allow(unwrap): rates were just asserted positive
    let service = Exp::new(mu).unwrap();

    let mut sojourn = SampleStats::new();
    let mut w = 0.0_f64; // waiting time of the current customer
    for n in 0..customers {
        let s = service.sample(&mut rng);
        if n >= warmup_customers {
            sojourn.push(w + s);
        }
        let a = interarrival.sample(&mut rng);
        w = (w + s - a).max(0.0);
    }
    LindleyResult { sojourn }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate_mm1;
    use crate::mm1::Mm1;

    #[test]
    fn matches_analytic_mean() {
        let lambda = 6.0;
        let mu = 10.0;
        let r = simulate_mm1_lindley(lambda, mu, 400_000, 10_000, 2024);
        let analytic = Mm1::new(lambda, mu).mean_sojourn();
        assert!(
            (r.sojourn.mean() - analytic).abs() < 0.02 * analytic,
            "lindley {} vs analytic {analytic}",
            r.sojourn.mean()
        );
    }

    #[test]
    fn matches_event_driven_simulator() {
        let lambda = 4.0;
        let mu = 6.0;
        let lr = simulate_mm1_lindley(lambda, mu, 300_000, 10_000, 9);
        let dr = simulate_mm1(lambda, mu, 80_000.0, 2_000.0, 9);
        let rel = (lr.sojourn.mean() - dr.sojourn.mean()).abs() / dr.sojourn.mean();
        assert!(
            rel < 0.05,
            "lindley {} vs des {}",
            lr.sojourn.mean(),
            dr.sojourn.mean()
        );
    }

    #[test]
    fn sojourn_tail_is_exponential() {
        // P(T > t) = e^{-(mu-lambda) t}: check the empirical tail at one point.
        let lambda = 5.0;
        let mu = 10.0;
        let mut r = simulate_mm1_lindley(lambda, mu, 300_000, 10_000, 77);
        let t = Mm1::new(lambda, mu);
        // Median of Exp(rate 5) is ln(2)/5.
        let median = r.sojourn.percentile(0.5).unwrap();
        let expect = (2.0_f64).ln() / (mu - lambda);
        assert!(
            (median - expect).abs() < 0.05 * expect,
            "median {median} vs {expect}"
        );
        let _ = t;
    }

    #[test]
    fn light_load_sojourn_close_to_service_time() {
        let r = simulate_mm1_lindley(0.1, 10.0, 200_000, 5_000, 3);
        // Almost no queueing: mean sojourn ≈ 1/µ.
        assert!((r.sojourn.mean() - 0.1).abs() < 0.01);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_mm1_lindley(3.0, 5.0, 10_000, 100, 5);
        let b = simulate_mm1_lindley(3.0, 5.0, 10_000, 100, 5);
        assert_eq!(a.sojourn.mean(), b.sojourn.mean());
    }
}
