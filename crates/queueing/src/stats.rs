//! Streaming and sample statistics for simulation output: Welford online
//! moments plus percentile queries over retained samples.

/// Online mean/variance accumulator (Welford's algorithm), numerically
/// stable for long simulation runs.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Approximate 95% confidence half-width for the mean (normal z=1.96).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Smallest observation seen (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A sample container with percentile queries; wraps [`Welford`] and keeps
/// the raw observations for quantiles.
#[derive(Debug, Clone, Default)]
pub struct SampleStats {
    welford: Welford,
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleStats {
    /// Fresh container.
    pub fn new() -> Self {
        SampleStats {
            welford: Welford::new(),
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.welford.push(x);
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.welford.std_dev()
    }

    /// 95% confidence half-width for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        self.welford.ci95_half_width()
    }

    /// The `p`-quantile (0 ≤ p ≤ 1) by nearest-rank on the sorted sample;
    /// `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&p), "quantile {p} out of range");
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let idx = ((self.samples.len() as f64 * p).ceil() as usize)
            .saturating_sub(1)
            .min(self.samples.len() - 1);
        Some(self.samples[idx])
    }

    /// Borrow the raw samples (insertion order not guaranteed after a
    /// percentile query).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn empty_accumulator_is_benign() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_err(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 3.0 + i as f64 * 0.1;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = SampleStats::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(0.5), Some(3.0));
        assert_eq!(s.percentile(1.0), Some(5.0));
        assert_eq!(s.percentile(0.9), Some(5.0));
    }

    #[test]
    fn percentile_of_empty_is_none() {
        let mut s = SampleStats::new();
        assert_eq!(s.percentile(0.5), None);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = Welford::new();
        let mut large = Welford::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            large.push((i % 3) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }
}
