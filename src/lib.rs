// palb:lint-tier = lib
//! # palb — Profit-Aware Load Balancing for distributed cloud data centers
//!
//! A from-scratch Rust reproduction of *Profit Aware Load Balancing for
//! Distributed Cloud Data Centers* (Liu, Ren, Quan, Zhao, Ren — IPPS 2013):
//! an energy-, price- and SLA-aware request dispatcher for a cloud provider
//! operating geographically distributed data centers in multiple
//! electricity markets.
//!
//! This crate is a facade re-exporting the workspace's subsystems:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `palb-core` | the profit-aware optimizer, baseline, slot driver |
//! | [`cluster`] | `palb-cluster` | system model, electricity prices, costs, presets |
//! | [`workload`] | `palb-workload` | trace generators (synthetic / diurnal / bursty) |
//! | [`tuf`] | `palb-tuf` | time-utility functions and the big-M transform |
//! | [`queueing`] | `palb-queueing` | M/M/1 analytics + discrete-event simulator |
//! | [`lp`] | `palb-lp` | dense two-phase simplex solver |
//! | [`nlp`] | `palb-nlp` | projected-gradient / augmented-Lagrangian solvers |
//! | [`obs`] | `palb-obs` | metrics registry, span timing, Prometheus/JSONL export |
//!
//! ## Quickstart
//!
//! ```
//! use palb::cluster::presets;
//! use palb::core::{run_with, BalancedPolicy, OptimizedPolicy, RunOptions};
//! use palb::workload::synthetic::constant_trace;
//!
//! // The paper's §V setup: 3 request classes, 4 front-ends, 3 data centers.
//! let system = presets::section_v();
//! let trace = constant_trace(presets::section_v_low_arrivals(), 1);
//!
//! let opts = RunOptions::default();
//! let optimized = run_with(&mut OptimizedPolicy::exact(), &system, &trace, &opts)
//!     .unwrap()
//!     .result;
//! let balanced = run_with(&mut BalancedPolicy, &system, &trace, &opts).unwrap().result;
//! assert!(optimized.total_net_profit() > balanced.total_net_profit());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use palb_cluster as cluster;
pub use palb_core as core;
pub use palb_lp as lp;
pub use palb_nlp as nlp;
pub use palb_obs as obs;
pub use palb_queueing as queueing;
pub use palb_tuf as tuf;
pub use palb_workload as workload;
