// NOT compiled — lint-engine fixture. Each numbered section seeds exactly
// one violation that `xtask/tests/lints.rs` asserts the engine catches.
// Files under tests/fixtures/ are invisible to cargo's test harness.

// 1. float-cmp: raw literal comparison.
fn seeded_float_cmp(x: f64) -> bool {
    x == 0.0
}

// 2. float-cmp via `!=` with a scientific literal on the left.
fn seeded_float_cmp_ne(y: f64) -> bool {
    1.5e3 != y
}

// 3. unwrap in lib tier.
fn seeded_unwrap() {
    let v: Option<u8> = None;
    v.unwrap();
}

// 4. expect in lib tier.
fn seeded_expect() {
    let v: Option<u8> = None;
    v.expect("seeded");
}

// 5. hot-path: format! in a marked function.
// palb:hot-path
fn seeded_hot_format() -> usize {
    let s = format!("boom");
    s.len()
}

// 6. hot-path(no-alloc): Vec construction in a strictly marked function.
// palb:hot-path(no-alloc)
fn seeded_hot_alloc() -> usize {
    let v = Vec::with_capacity(4);
    let _: &Vec<u8> = &v;
    v.len()
}

// 7. obs-names: a metric name literal outside the registries.
fn seeded_obs_name() -> &'static str {
    "palb_rogue_metric_total"
}

// Negative space: everything below must stay clean.
fn clean_waived(x: f64) -> bool {
    x == 0.0 // palb:allow(float-cmp): fixture-verified waiver path
}

#[cfg(test)]
mod tests {
    fn clean_in_tests(x: f64) -> bool {
        x == 0.0 && "palb_test_only".len() > 0
    }
}
