//! Lint-engine acceptance tests: the engine must (a) catch every seeded
//! violation in the fixture file, and (b) report the actual workspace as
//! clean — the latter is what makes `cargo test -p xtask` an enforcement
//! point even before CI runs `cargo xtask analyze`.

use std::path::{Path, PathBuf};

use xtask::scan::SourceFile;
use xtask::{rules, Rule, Tier};

fn fixture() -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/seeded_violations.rs");
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    // Lint it as if it lived in a lib-tier crate's src tree.
    (PathBuf::from("crates/fixture/src/lib.rs"), text)
}

#[test]
fn every_seeded_violation_is_caught() {
    let (rel, text) = fixture();
    let sf = SourceFile::parse(&text);
    let findings = rules::check_file(&rel, &sf, Tier::Lib);
    let count = |r: Rule| findings.iter().filter(|f| f.rule == r).count();
    assert_eq!(count(Rule::FloatCmp), 2, "{findings:#?}");
    assert_eq!(count(Rule::Unwrap), 2, "{findings:#?}");
    assert_eq!(count(Rule::HotPath), 2, "{findings:#?}");
    assert_eq!(count(Rule::ObsNames), 1, "{findings:#?}");
    assert_eq!(findings.len(), 7, "{findings:#?}");
    // Every finding names the fixture file with a plausible line.
    for f in &findings {
        assert_eq!(f.file, rel);
        assert!(f.line >= 1 && f.line <= text.lines().count());
    }
}

#[test]
fn waivers_and_test_modules_stay_clean() {
    let (rel, text) = fixture();
    let sf = SourceFile::parse(&text);
    let findings = rules::check_file(&rel, &sf, Tier::Lib);
    // The waived comparison and the #[cfg(test)] section must not appear.
    let waived_line = text
        .lines()
        .position(|l| l.contains("palb:allow(float-cmp)"))
        .expect("fixture has a waiver")
        + 1;
    assert!(
        findings.iter().all(|f| f.line < waived_line),
        "nothing at or after the waiver may fire: {findings:#?}"
    );
}

#[test]
fn bin_tier_is_unwrap_exempt() {
    let (rel, text) = fixture();
    let sf = SourceFile::parse(&text);
    let findings = rules::check_file(&rel, &sf, Tier::Bin);
    assert_eq!(
        findings.iter().filter(|f| f.rule == Rule::Unwrap).count(),
        0
    );
    // The other rules still fire.
    assert_eq!(findings.len(), 5, "{findings:#?}");
}

#[test]
fn the_workspace_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the workspace")
        .to_path_buf();
    let findings = xtask::run(&root);
    assert!(
        findings.is_empty(),
        "cargo xtask analyze must be clean; run it for details:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
