//! Lint-engine acceptance tests: the engine must (a) catch every seeded
//! violation in the fixture files, and (b) hold the ratchet on the actual
//! workspace — no findings beyond `analyze-baseline.json` and no dead
//! waivers — which makes `cargo test -p xtask` an enforcement point even
//! before CI runs `cargo xtask analyze`.

use std::path::{Path, PathBuf};

use xtask::baseline::{Baseline, Evaluation};
use xtask::callgraph::CrateGraph;
use xtask::scan::SourceFile;
use xtask::{graph_rules, rules, Rule, Tier};

fn fixture() -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/seeded_violations.rs");
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    // Lint it as if it lived in a lib-tier crate's src tree.
    (PathBuf::from("crates/fixture/src/lib.rs"), text)
}

#[test]
fn every_seeded_violation_is_caught() {
    let (rel, text) = fixture();
    let sf = SourceFile::parse(&text);
    let findings = rules::check_file(&rel, &sf, Tier::Lib);
    let count = |r: Rule| findings.iter().filter(|f| f.rule == r).count();
    assert_eq!(count(Rule::FloatCmp), 2, "{findings:#?}");
    assert_eq!(count(Rule::Unwrap), 2, "{findings:#?}");
    assert_eq!(count(Rule::HotPath), 2, "{findings:#?}");
    assert_eq!(count(Rule::ObsNames), 1, "{findings:#?}");
    assert_eq!(findings.len(), 7, "{findings:#?}");
    // Every finding names the fixture file with a plausible line.
    for f in &findings {
        assert_eq!(f.file, rel);
        assert!(f.line >= 1 && f.line <= text.lines().count());
    }
}

#[test]
fn waivers_and_test_modules_stay_clean() {
    let (rel, text) = fixture();
    let sf = SourceFile::parse(&text);
    let findings = rules::check_file(&rel, &sf, Tier::Lib);
    // The waived comparison and the #[cfg(test)] section must not appear.
    let waived_line = text
        .lines()
        .position(|l| l.contains("palb:allow(float-cmp)"))
        .expect("fixture has a waiver")
        + 1;
    assert!(
        findings.iter().all(|f| f.line < waived_line),
        "nothing at or after the waiver may fire: {findings:#?}"
    );
}

#[test]
fn bin_tier_is_unwrap_exempt() {
    let (rel, text) = fixture();
    let sf = SourceFile::parse(&text);
    let findings = rules::check_file(&rel, &sf, Tier::Bin);
    assert_eq!(
        findings.iter().filter(|f| f.rule == Rule::Unwrap).count(),
        0
    );
    // The other rules still fire.
    assert_eq!(findings.len(), 5, "{findings:#?}");
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the workspace")
        .to_path_buf()
}

#[test]
fn the_workspace_tree_holds_the_ratchet() {
    let root = workspace_root();
    let baseline =
        Baseline::load(&root.join("analyze-baseline.json")).expect("committed baseline parses");
    let eval = Evaluation::new(xtask::run(&root), &baseline);
    assert!(
        eval.clean(),
        "cargo xtask analyze must not regress the baseline:\n{}",
        eval.regressions
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn graph_rule_families_are_clean_in_tree() {
    // Unlike panic-path (641 audited legacy findings held by the ratchet),
    // the determinism / lock-order / trans-alloc families carry zero debt:
    // every site is either fixed or waived with a written reason.
    let root = workspace_root();
    let graph_findings: Vec<_> = xtask::run(&root)
        .into_iter()
        .filter(|f| {
            matches!(
                f.rule,
                Rule::Determinism | Rule::LockOrder | Rule::TransAlloc
            )
        })
        .collect();
    assert!(
        graph_findings.is_empty(),
        "determinism/lock-order/trans-alloc must stay at zero: {graph_findings:#?}"
    );
}

#[test]
fn the_tree_has_no_dead_waivers() {
    let root = workspace_root();
    let dead = xtask::unused_waivers(&root);
    assert!(
        dead.is_empty(),
        "every palb:allow waiver must still suppress something:\n{}",
        dead.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ---------------------------------------------------------------------------
// Call-graph builder fixture suite: the resolution corner cases the four
// graph rule families lean on.
// ---------------------------------------------------------------------------

fn graph(sources: &[(&str, &str)]) -> CrateGraph {
    CrateGraph::build(
        sources
            .iter()
            .map(|(p, t)| (PathBuf::from(p), SourceFile::parse(t)))
            .collect(),
    )
}

fn fn_idx(g: &CrateGraph, path: &str) -> usize {
    g.fns
        .iter()
        .position(|f| f.path() == path)
        .unwrap_or_else(|| {
            panic!(
                "no fn `{path}` in {:?}",
                g.fns.iter().map(|f| f.path()).collect::<Vec<_>>()
            )
        })
}

fn callees(g: &CrateGraph, path: &str) -> Vec<String> {
    let mut v: Vec<String> = g.edges[fn_idx(g, path)]
        .iter()
        .map(|&(t, _)| g.fns[t].path())
        .collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn callgraph_cycles_terminate_and_close() {
    let g = graph(&[(
        "crates/x/src/lib.rs",
        "pub fn ping() {\n    pong();\n}\nfn pong() {\n    ping();\n}\n",
    )]);
    let (reached, parent) = g.closure(&[fn_idx(&g, "ping")]);
    assert!(reached.iter().all(|&r| r), "cycle members all reachable");
    // The witness chain through the cycle is finite.
    let chain = g.chain(&parent, fn_idx(&g, "pong"));
    assert_eq!(chain, "ping -> pong");
}

#[test]
fn callgraph_shadowed_names_resolve_to_the_local_module() {
    let g = graph(&[
        (
            "crates/x/src/a.rs",
            "pub fn caller() {\n    helper();\n}\nfn helper() {}\n",
        ),
        ("crates/x/src/b.rs", "fn helper() {}\n"),
    ]);
    // Two free `helper`s exist; the same-module one wins outright.
    assert_eq!(callees(&g, "a::caller"), ["a::helper"]);
}

#[test]
fn callgraph_ambiguous_foreign_names_stay_unresolved() {
    let g = graph(&[
        (
            "crates/x/src/lib.rs",
            "pub fn caller() {\n    helper();\n}\n",
        ),
        ("crates/x/src/a.rs", "fn helper() {}\n"),
        ("crates/x/src/b.rs", "fn helper() {}\n"),
    ]);
    // No local candidate and two foreign ones: dropping the edge is the
    // honest choice (a guess would fabricate witness chains).
    assert_eq!(callees(&g, "caller"), Vec::<String>::new());
}

#[test]
fn callgraph_unique_free_fn_resolves_across_modules() {
    let g = graph(&[
        (
            "crates/x/src/lib.rs",
            "pub fn caller() {\n    helper();\n}\n",
        ),
        ("crates/x/src/util.rs", "pub fn helper() {}\n"),
    ]);
    assert_eq!(callees(&g, "caller"), ["util::helper"]);
}

#[test]
fn callgraph_method_calls_fan_out_to_all_same_name_impls() {
    let g = graph(&[(
        "crates/x/src/lib.rs",
        concat!(
            "pub trait Go {\n    fn go(&self);\n}\n",
            "pub struct A;\n",
            "impl Go for A {\n    fn go(&self) {}\n}\n",
            "pub struct B;\n",
            "impl B {\n    fn go(&self) {}\n}\n",
            "pub fn caller(a: &A) {\n    a.go();\n}\n",
        ),
    )]);
    // Receiver types are unknown, so `.go()` over-approximates to every
    // impl/trait `go` — sound for dyn dispatch.
    assert_eq!(callees(&g, "caller"), ["A::go", "B::go", "Go::go"]);
}

#[test]
fn callgraph_qualified_calls_resolve_by_owner() {
    let g = graph(&[(
        "crates/x/src/lib.rs",
        concat!(
            "pub struct A;\n",
            "impl A {\n    pub fn make() -> A {\n        A\n    }\n}\n",
            "pub struct B;\n",
            "impl B {\n    pub fn make() -> B {\n        B\n    }\n}\n",
            "pub fn caller() {\n    let _ = A::make();\n}\n",
        ),
    )]);
    assert_eq!(callees(&g, "caller"), ["A::make"]);
}

#[test]
fn callgraph_closure_bodies_attribute_to_the_enclosing_fn() {
    let g = graph(&[(
        "crates/x/src/lib.rs",
        concat!(
            "pub fn outer(xs: &[u64]) -> u64 {\n",
            "    xs.iter().map(|x| {\n",
            "        helper(*x)\n",
            "    }).sum()\n",
            "}\n",
            "fn helper(x: u64) -> u64 {\n    x\n}\n",
        ),
    )]);
    assert_eq!(callees(&g, "outer"), ["helper"]);
}

#[test]
fn callgraph_foreign_paths_and_macros_produce_no_edges() {
    let g = graph(&[(
        "crates/x/src/lib.rs",
        concat!(
            "pub fn caller(x: u64) {\n",
            "    std::mem::drop(x);\n",
            "    other_crate::helper();\n",
            "    println!(\"{x}\");\n",
            "}\n",
            "fn helper() {}\n",
        ),
    )]);
    // `std::`/foreign paths and macro invocations never resolve; in
    // particular `other_crate::helper()` must NOT alias the local free
    // `helper`.
    assert_eq!(callees(&g, "caller"), Vec::<String>::new());
}

#[test]
fn callgraph_trait_default_methods_are_extracted() {
    let g = graph(&[(
        "crates/x/src/lib.rs",
        concat!(
            "pub trait Plan {\n",
            "    fn len(&self) -> usize;\n",
            "    fn is_empty(&self) -> bool {\n",
            "        self.len() == 0\n",
            "    }\n",
            "}\n",
        ),
    )]);
    let is_empty = fn_idx(&g, "Plan::is_empty");
    assert!(g.fns[is_empty].body.is_some(), "default method has a body");
    assert_eq!(callees(&g, "Plan::is_empty"), ["Plan::len"]);
    // The bodiless signature is still extracted (as a possible target).
    assert!(g.fns[fn_idx(&g, "Plan::len")].body.is_none());
}

// ---------------------------------------------------------------------------
// Seeded graph-rule fixtures: one deliberate violation per family, plus
// its waived twin, run through the same entry point CI uses.
// ---------------------------------------------------------------------------

fn graph_findings(sources: &[(&str, &str)], tier: Tier) -> Vec<xtask::Finding> {
    graph_rules::check_crate_graph(&graph(sources), tier)
}

#[test]
fn seeded_determinism_taint_is_caught_and_waivable() {
    let hot = &[(
        "crates/x/src/lib.rs",
        concat!(
            "// palb:decision-path\n",
            "pub fn decide() {\n",
            "    stamp();\n",
            "}\n",
            "fn stamp() {\n",
            "    let _ = std::time::Instant::now();\n",
            "}\n",
        ),
    )];
    let findings = graph_findings(hot, Tier::Lib);
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == Rule::Determinism)
            .count(),
        1,
        "{findings:#?}"
    );
    let waived = &[(
        "crates/x/src/lib.rs",
        concat!(
            "// palb:decision-path\n",
            "pub fn decide() {\n",
            "    stamp();\n",
            "}\n",
            "fn stamp() {\n",
            "    // palb:allow(determinism): seeded carve-out for the fixture\n",
            "    let _ = std::time::Instant::now();\n",
            "}\n",
        ),
    )];
    assert!(graph_findings(waived, Tier::Lib).is_empty());
}

#[test]
fn seeded_lock_order_inversion_is_caught() {
    let findings = graph_findings(
        &[(
            "crates/x/src/lib.rs",
            concat!(
                "pub fn ab(a: &M, b: &M) {\n",
                "    let _g = a.lock();\n",
                "    let _h = b.lock();\n",
                "}\n",
                "pub fn ba(a: &M, b: &M) {\n",
                "    let _g = b.lock();\n",
                "    let _h = a.lock();\n",
                "}\n",
            ),
        )],
        Tier::Lib,
    );
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == Rule::LockOrder)
            .count(),
        1,
        "{findings:#?}"
    );
}

#[test]
fn seeded_transitive_alloc_is_caught_in_callees_only() {
    let findings = graph_findings(
        &[(
            "crates/x/src/lib.rs",
            concat!(
                "// palb:hot-path(no-alloc)\n",
                "pub fn pivot() {\n",
                "    helper();\n",
                "}\n",
                "fn helper() {\n",
                "    let _v = vec![1u8];\n",
                "}\n",
            ),
        )],
        Tier::Lib,
    );
    let trans: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::TransAlloc)
        .collect();
    assert_eq!(trans.len(), 1, "{findings:#?}");
    // The root's own body belongs to the per-function hot-path rule; the
    // graph rule only reports the callee.
    assert_eq!(trans[0].line, 6, "{trans:#?}");
}

#[test]
fn seeded_panic_path_is_lib_tier_only() {
    let src = &[(
        "crates/x/src/lib.rs",
        concat!(
            "pub fn api(x: Option<u64>) -> u64 {\n",
            "    inner(x)\n",
            "}\n",
            "fn inner(x: Option<u64>) -> u64 {\n",
            "    x.unwrap()\n",
            "}\n",
        ),
    )];
    let lib = graph_findings(src, Tier::Lib);
    assert_eq!(
        lib.iter().filter(|f| f.rule == Rule::PanicPath).count(),
        1,
        "{lib:#?}"
    );
    // Bins own their top level: unwrap policy does not apply.
    assert!(graph_findings(src, Tier::Bin).is_empty());
}
