//! The `analyze-baseline.json` ratchet.
//!
//! The call-graph rules report audited-legacy debt (panic-reachability
//! alone anchors hundreds of indexing sites in the LP kernels) that
//! cannot all be fixed in one PR. The baseline freezes that debt as
//! per-`(file, rule)` finding *counts* — deliberately not line numbers,
//! so unrelated edits that shift code around don't invalidate it — and
//! `cargo xtask analyze` then enforces a one-way ratchet:
//!
//! * a bucket whose current count exceeds its baseline count is a
//!   **regression** — the build fails and every finding in the bucket is
//!   listed (the engine cannot know which occurrence is the new one);
//! * a bucket whose count dropped is **retired** debt — reported so the
//!   author can shrink the baseline with `--update-baseline`;
//! * a bucket absent from the baseline allows zero findings.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::json::{self, Value};
use crate::Finding;

/// Frozen per-`(file, rule)` finding counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `"<file>|<rule>"` → allowed finding count. Paths use `/`
    /// separators regardless of host OS.
    pub counts: BTreeMap<String, usize>,
}

/// The ratchet bucket key of one finding.
pub fn key(f: &Finding) -> String {
    format!(
        "{}|{}",
        f.file.to_string_lossy().replace('\\', "/"),
        f.rule.marker()
    )
}

impl Baseline {
    /// Snapshot of the current tree: every finding counted into its
    /// bucket.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for f in findings {
            *counts.entry(key(f)).or_default() += 1;
        }
        Baseline { counts }
    }

    /// Parses the committed baseline document.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text)?;
        let version = doc.get("version").and_then(Value::as_num);
        if version != Some(1.0) {
            return Err("baseline version must be 1".to_owned());
        }
        let obj = doc
            .get("counts")
            .and_then(Value::as_obj)
            .ok_or("baseline is missing the `counts` object")?;
        let mut counts = BTreeMap::new();
        for (k, v) in obj {
            let n = v
                .as_num()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0) // palb:allow(float-cmp): JSON integers round-trip exactly
                .ok_or_else(|| format!("count for `{k}` is not a non-negative integer"))?;
            counts.insert(k.clone(), n as usize);
        }
        Ok(Baseline { counts })
    }

    /// Loads a baseline file; a missing file is an empty baseline (every
    /// finding is then a regression), a malformed one is an error.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// Renders the baseline as its canonical committed form: sorted
    /// keys, one per line, trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"counts\": {\n");
        let last = self.counts.len().saturating_sub(1);
        for (i, (k, n)) in self.counts.iter().enumerate() {
            let _ = write!(out, "    \"{}\": {}", json::escape(k), n);
            out.push_str(if i == last { "\n" } else { ",\n" });
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// The verdict of one analyze run against the committed baseline.
#[derive(Debug)]
pub struct Evaluation {
    /// Every current finding, sorted by file/line.
    pub findings: Vec<Finding>,
    /// Findings in buckets whose count exceeds the baseline. Empty ⇔
    /// the ratchet holds.
    pub regressions: Vec<Finding>,
    /// Over-budget buckets: key → `(current, allowed)`.
    pub over: BTreeMap<String, (usize, usize)>,
    /// Under-budget buckets (debt paid down): key → `(current, allowed)`.
    pub retired: BTreeMap<String, (usize, usize)>,
}

impl Evaluation {
    /// Compares `findings` against `baseline`.
    pub fn new(findings: Vec<Finding>, baseline: &Baseline) -> Evaluation {
        let current = Baseline::from_findings(&findings);
        let mut over = BTreeMap::new();
        let mut retired = BTreeMap::new();
        for (k, &n) in &current.counts {
            let allowed = baseline.counts.get(k).copied().unwrap_or(0);
            if n > allowed {
                over.insert(k.clone(), (n, allowed));
            } else if n < allowed {
                retired.insert(k.clone(), (n, allowed));
            }
        }
        for (k, &allowed) in &baseline.counts {
            if !current.counts.contains_key(k) && allowed > 0 {
                retired.insert(k.clone(), (0, allowed));
            }
        }
        let regressions = findings
            .iter()
            .filter(|f| over.contains_key(&key(f)))
            .cloned()
            .collect();
        Evaluation {
            findings,
            regressions,
            over,
            retired,
        }
    }

    /// True when no bucket exceeds its baseline budget.
    pub fn clean(&self) -> bool {
        self.over.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;
    use std::path::PathBuf;

    fn f(file: &str, line: usize, rule: Rule) -> Finding {
        Finding {
            file: PathBuf::from(file),
            line,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn ratchet_tolerates_baseline_and_flags_growth() {
        let old = vec![f("a.rs", 3, Rule::PanicPath), f("a.rs", 9, Rule::PanicPath)];
        let base = Baseline::from_findings(&old);
        // Same count, different lines: still clean (line drift is fine).
        let drifted = vec![
            f("a.rs", 5, Rule::PanicPath),
            f("a.rs", 11, Rule::PanicPath),
        ];
        assert!(Evaluation::new(drifted, &base).clean());
        // One more finding in the bucket: regression, all three listed.
        let grown = vec![
            f("a.rs", 3, Rule::PanicPath),
            f("a.rs", 9, Rule::PanicPath),
            f("a.rs", 20, Rule::PanicPath),
        ];
        let eval = Evaluation::new(grown, &base);
        assert!(!eval.clean());
        assert_eq!(eval.regressions.len(), 3);
        // One fewer: clean, and the bucket shows up as retired debt.
        let shrunk = vec![f("a.rs", 3, Rule::PanicPath)];
        let eval = Evaluation::new(shrunk, &base);
        assert!(eval.clean());
        assert_eq!(eval.retired.get("a.rs|panic-path"), Some(&(1, 2)));
    }

    #[test]
    fn unknown_buckets_allow_nothing() {
        let base = Baseline::default();
        let eval = Evaluation::new(vec![f("b.rs", 1, Rule::Determinism)], &base);
        assert!(!eval.clean());
        assert_eq!(eval.over.get("b.rs|determinism"), Some(&(1, 0)));
    }

    #[test]
    fn json_round_trip() {
        let base = Baseline::from_findings(&[
            f("crates/lp/src/simplex.rs", 1, Rule::PanicPath),
            f("crates/lp/src/simplex.rs", 2, Rule::PanicPath),
            f("crates/core/src/portfolio.rs", 7, Rule::Determinism),
        ]);
        let parsed = Baseline::parse(&base.to_json()).unwrap();
        assert_eq!(parsed, base);
        assert!(Baseline::parse("{\"version\": 2, \"counts\": {}}").is_err());
        assert!(Baseline::parse("{\"version\": 1}").is_err());
    }
}
