//! Lexical pre-pass: comment/string stripping and test-region tracking.
//!
//! The lint rules never look at raw source. They look at [`SourceFile`],
//! where every comment has been removed and every string literal replaced
//! by an empty `""` (so token structure survives but contents cannot
//! trigger rules), and where each line knows whether it sits inside a
//! `#[cfg(test)]` module. String literal *contents* are collected
//! separately for the one rule that needs them (obs-names).
//!
//! This is a scanner, not a parser: it understands exactly as much Rust
//! lexical structure as the rules need — line/block comments (nested),
//! plain and raw strings, char literals vs. lifetimes — and nothing more.

/// A lexed source file, ready for rule matching.
#[derive(Debug)]
pub struct SourceFile {
    /// Original lines, used only for marker comments (`// palb:…`).
    pub lines: Vec<String>,
    /// Comment- and string-stripped lines, same indices as `lines`.
    pub code: Vec<String>,
    /// String literal contents per line: `(line_index, content)`.
    pub strings: Vec<(usize, String)>,
    /// Per line: is it inside a `#[cfg(test)]` module body?
    pub in_test: Vec<bool>,
    /// When set, [`SourceFile::allows`] always answers `false`. The
    /// unused-waiver audit sets this to recompute what the rules *would*
    /// report if no waiver existed; a waiver whose line then stays clean
    /// is dead and must be deleted.
    pub ignore_waivers: bool,
}

impl SourceFile {
    /// Lexes `source` into stripped code, collected strings and test
    /// regions.
    pub fn parse(source: &str) -> SourceFile {
        let lines: Vec<String> = source.lines().map(str::to_owned).collect();
        let (code, strings) = strip(source);
        debug_assert_eq!(code.len(), lines.len());
        let in_test = mark_test_regions(&code);
        SourceFile {
            lines,
            code,
            strings,
            in_test,
            ignore_waivers: false,
        }
    }

    /// True when `line` (0-based) carries a `// palb:allow(<rule>): r`
    /// waiver for `rule` — appended to the line itself, or on a
    /// comment-only line directly above it. The reason after the colon
    /// must be non-empty; an unexplained waiver does not count.
    pub fn allows(&self, line: usize, rule: &str) -> bool {
        if self.ignore_waivers {
            return false;
        }
        let marker = format!("palb:allow({rule})");
        // Doc comments quoting the waiver syntax (rule explanations) are
        // prose, not waivers.
        let has_waiver = |l: usize| {
            self.lines.get(l).is_some_and(|text| {
                !is_doc_comment(text)
                    && text.find(&marker).is_some_and(|at| {
                        let rest = &text[at + marker.len()..];
                        rest.trim_start()
                            .strip_prefix(':')
                            .is_some_and(|reason| !reason.trim().is_empty())
                    })
            })
        };
        if has_waiver(line) {
            return true;
        }
        line > 0
            && self
                .lines
                .get(line - 1)
                .is_some_and(|t| t.trim_start().starts_with("//"))
            && has_waiver(line - 1)
    }

    /// Enumerates every well-formed waiver comment in the file as
    /// `(line, rule)` with a 0-based line. Occurrences that live inside
    /// string literals (rule messages quoting the waiver syntax) are
    /// excluded by matching them against the collected string contents
    /// of the same line.
    pub fn waivers(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for (i, text) in self.lines.iter().enumerate() {
            // Test regions are rule-exempt, so a waiver there can never
            // be exercised; doc comments only *describe* waivers.
            if self.in_test[i] || is_doc_comment(text) {
                continue;
            }
            // Rules named inside string literals on this line: each
            // such mention cancels one raw-text occurrence below.
            let mut in_strings: Vec<String> = Vec::new();
            for (l, content) in &self.strings {
                if *l == i {
                    collect_waiver_rules(content, &mut in_strings);
                }
            }
            let mut here: Vec<String> = Vec::new();
            collect_waiver_rules(text, &mut here);
            for rule in here {
                if let Some(at) = in_strings.iter().position(|r| *r == rule) {
                    in_strings.swap_remove(at);
                } else {
                    out.push((i, rule));
                }
            }
        }
        out
    }
}

/// `///` or `//!` line — rustdoc prose, never a lint marker.
fn is_doc_comment(text: &str) -> bool {
    let t = text.trim_start();
    t.starts_with("///") || t.starts_with("//!")
}

/// Appends the rule names of well-formed `palb:allow(<rule>): <reason>`
/// markers found in `text` (reason required, rule must be a plain
/// kebab-case name).
fn collect_waiver_rules(text: &str, out: &mut Vec<String>) {
    const MARK: &str = "palb:allow(";
    let mut from = 0;
    while let Some(at) = text[from..].find(MARK) {
        let rest = &text[from + at + MARK.len()..];
        from += at + MARK.len();
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = &rest[..close];
        if rule.is_empty()
            || !rule
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            continue;
        }
        let ok = rest[close + 1..]
            .trim_start()
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        if ok {
            out.push(rule.to_owned());
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Strips comments and string/char literals. Comments vanish; strings
/// become `""`; char literals become `' '`. Returns the stripped lines
/// and the collected string contents.
fn strip(source: &str) -> (Vec<String>, Vec<(usize, String)>) {
    let mut out = Vec::new();
    let mut strings = Vec::new();
    let mut cur = String::new();
    let mut lit = String::new();
    let mut mode = Mode::Code;
    let mut chars = source.chars().peekable();
    let mut line_no = 0usize;
    while let Some(c) = chars.next() {
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            if matches!(mode, Mode::Str | Mode::RawStr(_)) {
                lit.push('\n');
            }
            out.push(std::mem::take(&mut cur));
            line_no += 1;
            continue;
        }
        match mode {
            Mode::Code => match c {
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    mode = Mode::LineComment;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    mode = Mode::BlockComment(1);
                }
                '"' => {
                    mode = Mode::Str;
                    cur.push('"');
                }
                'r' if chars.peek() == Some(&'"') || chars.peek() == Some(&'#') => {
                    // Possible raw string: r"…" or r#"…"#. Count hashes.
                    let mut look = chars.clone();
                    let mut hashes = 0u32;
                    while look.peek() == Some(&'#') {
                        hashes += 1;
                        look.next();
                    }
                    if look.peek() == Some(&'"') {
                        for _ in 0..=hashes {
                            chars.next();
                        }
                        mode = Mode::RawStr(hashes);
                        cur.push('"');
                    } else {
                        cur.push('r');
                    }
                }
                '\'' => {
                    // Char literal vs. lifetime: 'x' or '\n' is a literal;
                    // 'a (no closing quote right after) is a lifetime.
                    let mut look = chars.clone();
                    let is_char = match look.next() {
                        Some('\\') => true,
                        Some(_) => look.next() == Some('\''),
                        None => false,
                    };
                    if is_char {
                        if chars.next() == Some('\\') {
                            chars.next();
                        }
                        chars.next(); // closing quote
                        cur.push_str("' '");
                    } else {
                        cur.push('\'');
                    }
                }
                _ => cur.push(c),
            },
            Mode::LineComment => {}
            Mode::BlockComment(depth) => {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    if depth == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                } else if c == '/' && chars.peek() == Some(&'*') {
                    chars.next();
                    mode = Mode::BlockComment(depth + 1);
                }
            }
            Mode::Str => match c {
                '\\' => match chars.next() {
                    // Line-continuation escape: the consumed newline must
                    // still terminate the current output line.
                    Some('\n') => {
                        out.push(std::mem::take(&mut cur));
                        line_no += 1;
                    }
                    Some(esc) => {
                        lit.push('\\');
                        lit.push(esc);
                    }
                    None => {}
                },
                '"' => {
                    strings.push((line_no, std::mem::take(&mut lit)));
                    cur.push('"');
                    mode = Mode::Code;
                }
                _ => lit.push(c),
            },
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut look = chars.clone();
                    let mut n = 0u32;
                    while n < hashes && look.peek() == Some(&'#') {
                        n += 1;
                        look.next();
                    }
                    if n == hashes {
                        for _ in 0..hashes {
                            chars.next();
                        }
                        strings.push((line_no, std::mem::take(&mut lit)));
                        cur.push('"');
                        mode = Mode::Code;
                    } else {
                        lit.push('"');
                    }
                } else {
                    lit.push(c);
                }
            }
        }
    }
    if !source.is_empty() && !source.ends_with('\n') {
        out.push(cur);
    }
    (out, strings)
}

/// Marks the lines that sit inside a `#[cfg(test)]` module body, by
/// brace-depth tracking over stripped code. The attribute line itself and
/// the `mod … {` line are marked too.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut depth: i64 = 0;
    // When inside a test module: the depth *above* which lines are test.
    let mut test_floor: Option<i64> = None;
    // A #[cfg(test)] was seen and we await the mod's opening brace.
    let mut pending = false;
    for (i, line) in code.iter().enumerate() {
        let trimmed = line.trim();
        if test_floor.is_none() && trimmed.contains("#[cfg(test)]") {
            pending = true;
        }
        if pending || test_floor.is_some() {
            in_test[i] = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending {
                        test_floor = Some(depth);
                        pending = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(floor) = test_floor {
                        if depth < floor {
                            test_floor = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let sf = SourceFile::parse("let a = 1; // c == 0.0\nlet /* x == 1.0 */ b = 2;\n");
        assert_eq!(sf.code[0].trim_end(), "let a = 1;");
        assert!(!sf.code[1].contains("=="));
    }

    #[test]
    fn strings_are_emptied_and_collected() {
        let sf = SourceFile::parse("let s = \"a == 0.0\"; let t = r#\"b != 1.0\"#;\n");
        assert!(!sf.code[0].contains("=="));
        assert_eq!(sf.strings.len(), 2);
        assert_eq!(sf.strings[0].1, "a == 0.0");
        assert_eq!(sf.strings[1].1, "b != 1.0");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let sf = SourceFile::parse("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'z'; }\n");
        // The quote char literal must not open a string.
        assert!(sf.strings.is_empty());
        assert!(sf.code[0].contains("fn f<'a>"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let sf = SourceFile::parse(src);
        assert_eq!(sf.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn allow_marker_requires_reason() {
        let sf = SourceFile::parse(
            "let a = 0.0; // palb:allow(float-cmp): exact sentinel\nlet b = 0.0; // palb:allow(float-cmp):\n",
        );
        assert!(sf.allows(0, "float-cmp"));
        assert!(!sf.allows(1, "float-cmp"));
        // Preceding-line waiver.
        let sf2 = SourceFile::parse("// palb:allow(unwrap): startup config\nx.unwrap();\n");
        assert!(sf2.allows(1, "unwrap"));
    }

    #[test]
    fn waiver_enumeration_skips_string_mentions() {
        let sf = SourceFile::parse(
            "x.unwrap(); // palb:allow(unwrap): startup config\n\
             let msg = \"waive with `// palb:allow(float-cmp): <reason>`\";\n\
             // palb:allow(hot-path): scratch reuse is measured\n\
             y.unwrap(); // palb:allow(unwrap):\n",
        );
        let w = sf.waivers();
        assert_eq!(
            w,
            vec![(0, "unwrap".to_owned()), (2, "hot-path".to_owned())],
            "string-quoted syntax and reasonless markers don't count"
        );
    }

    #[test]
    fn ignore_waivers_disables_allows() {
        let mut sf = SourceFile::parse("x.unwrap(); // palb:allow(unwrap): rim\n");
        assert!(sf.allows(0, "unwrap"));
        sf.ignore_waivers = true;
        assert!(!sf.allows(0, "unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let sf = SourceFile::parse("/* outer /* inner == 0.0 */ still */ let x = 1;\n");
        assert!(!sf.code[0].contains("=="));
        assert!(sf.code[0].contains("let x = 1;"));
    }
}
