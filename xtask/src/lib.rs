// palb:lint-tier = bin
//! # xtask — workspace automation for palb
//!
//! The engine behind `cargo xtask analyze`: a source-level lint pass that
//! enforces the project's cross-crate invariants, the ones `rustc` and
//! `clippy` cannot see because they are *policy*, not language rules:
//!
//! * **float-cmp** — no raw `==`/`!=` against floating-point literals
//!   outside [`palb_num::approx`], the one module allowed to spell exact
//!   comparison. Everything else must say what it means (`is_zero`,
//!   `bits_eq`, `approx_eq`, …).
//! * **unwrap** — no `.unwrap()` / `.expect(` in library-tier crates;
//!   binaries and the bench harness may panic at the rim, libraries return
//!   structured errors.
//! * **hot-path** — functions marked `// palb:hot-path` must not build
//!   format machinery or `String`s; the stricter
//!   `// palb:hot-path(no-alloc)` additionally bans `Vec`/`Box`
//!   construction. Applied to the simplex pivot loop, the obs recorder
//!   fast path and the branch-and-bound node loop.
//! * **obs-names** — metric/span name literals (`"palb_…"` / `"palb/…"`)
//!   may only be defined in `palb_core::obs::names` and the `palb-obs`
//!   crate; call sites must use the named constants.
//! * **crate-header** — every crate root declares
//!   `#![forbid(unsafe_code)]` and a `// palb:lint-tier = lib|bin`
//!   marker so the unwrap rule knows which contract applies.
//!
//! The scanner is deliberately hand-rolled (zero dependencies): it strips
//! comments and string literals with a small state machine, tracks
//! `#[cfg(test)]` regions by brace depth, and matches rules on the
//! remaining code text. Test code, doc comments and doc examples are
//! exempt from every rule. A lint that cannot be satisfied at a specific
//! site is waived in place with `// palb:allow(<rule>): <reason>` — the
//! reason is mandatory and the waiver covers only that line.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod graph_rules;
pub mod json;
pub mod rules;
pub mod sarif;
pub mod scan;

use std::fmt;
use std::path::{Path, PathBuf};

/// Which lint produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Raw float `==`/`!=` outside the allowlisted `palb_num::approx`.
    FloatCmp,
    /// `.unwrap()` / `.expect(` in a library-tier crate.
    Unwrap,
    /// Allocation or formatting inside a `// palb:hot-path` function.
    HotPath,
    /// A `"palb_…"` name literal outside the obs name registries.
    ObsNames,
    /// A direct `BbOptions` use outside its deprecated-alias home; new
    /// code builds a `SolverConfig` instead.
    BbOptions, // palb:allow(bb-options): the rule's own discriminant
    /// Missing `#![forbid(unsafe_code)]` or lint-tier marker in a crate root.
    CrateHeader,
    /// A nondeterminism source (wall clock, thread identity, OS RNG,
    /// hash-order iteration) reachable from a `// palb:decision-path`
    /// function. The determinism contract — bitwise-identical objectives
    /// and dispatches at every thread count — admits only the waived,
    /// audited carve-outs.
    Determinism,
    /// Two locks acquired in both orders somewhere in a crate's call
    /// graph: deadlock potential.
    LockOrder,
    /// Allocation or formatting reachable from a `// palb:hot-path`
    /// function *through its callees* (the per-function rule only sees
    /// the marked body).
    TransAlloc,
    /// A panic site (`unwrap`, `panic!`, bare indexing) transitively
    /// reachable from a lib-tier `pub fn`.
    PanicPath,
}

impl Rule {
    /// Every rule the engine knows, for SARIF descriptors and reports.
    pub const ALL: [Rule; 10] = [
        Rule::FloatCmp,
        Rule::Unwrap,
        Rule::HotPath,
        Rule::ObsNames,
        Rule::BbOptions, // palb:allow(bb-options): the rule's own registry
        Rule::CrateHeader,
        Rule::Determinism,
        Rule::LockOrder,
        Rule::TransAlloc,
        Rule::PanicPath,
    ];

    /// The marker name used by `// palb:allow(<name>): reason` waivers.
    pub fn marker(self) -> &'static str {
        match self {
            Rule::FloatCmp => "float-cmp",
            Rule::Unwrap => "unwrap",
            Rule::HotPath => "hot-path",
            Rule::ObsNames => "obs-names",
            Rule::BbOptions => "bb-options", // palb:allow(bb-options): the rule's own marker
            Rule::CrateHeader => "crate-header",
            Rule::Determinism => "determinism",
            Rule::LockOrder => "lock-order",
            Rule::TransAlloc => "trans-alloc",
            Rule::PanicPath => "panic-path",
        }
    }

    /// One-line rule description for the SARIF `rules` descriptor table.
    pub fn description(self) -> &'static str {
        match self {
            Rule::FloatCmp => "raw float ==/!= outside palb_num::approx",
            Rule::Unwrap => "unwrap/expect in a lib-tier crate",
            Rule::HotPath => "allocation or formatting in a palb:hot-path body",
            Rule::ObsNames => "metric name literal outside the obs name registries",
            Rule::BbOptions => "use of the deprecated solver-options alias", // palb:allow(bb-options): describing itself
            Rule::CrateHeader => "crate root missing forbid(unsafe_code) or lint-tier marker",
            Rule::Determinism => {
                "nondeterminism source reachable from a palb:decision-path function"
            }
            Rule::LockOrder => "two locks acquired in inconsistent orders (deadlock potential)",
            Rule::TransAlloc => "allocation reachable from a palb:hot-path function via callees",
            Rule::PanicPath => "panic site reachable from a lib-tier public API",
        }
    }

    /// Parses a waiver-marker name back to the rule.
    pub fn from_marker(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.marker() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.marker())
    }
}

/// One lint violation: file, 1-based line, rule and a human message.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path of the offending file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number the finding anchors to.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What exactly is wrong and how to fix or waive it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// The contract a crate opted into via its `// palb:lint-tier` marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Library: must be panic-free — `unwrap`/`expect` are violations.
    Lib,
    /// Binary / harness rim: may panic on startup and I/O errors.
    Bin,
}

/// A crate discovered under the workspace root.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name, from the directory (informational only).
    pub name: String,
    /// The crate's `src/` directory.
    pub src: PathBuf,
    /// The crate root file (`lib.rs`, falling back to `main.rs`).
    pub root_file: PathBuf,
    /// Declared tier; `None` when the marker is missing (a finding in
    /// itself; the unwrap rule then assumes the stricter `Lib`).
    pub tier: Option<Tier>,
}

/// Discovers the workspace's crates: `crates/*`, `xtask`, and the root
/// `palb` package when the root directory carries a `src/lib.rs`.
pub fn discover_crates(root: &Path) -> Vec<CrateInfo> {
    let mut found = Vec::new();
    let mut dirs: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.join("Cargo.toml").is_file() {
                dirs.push(p);
            }
        }
    }
    dirs.sort();
    if root.join("xtask/Cargo.toml").is_file() {
        dirs.push(root.join("xtask"));
    }
    if root.join("src/lib.rs").is_file() {
        dirs.push(root.to_path_buf());
    }
    for dir in dirs {
        let src = dir.join("src");
        let lib = src.join("lib.rs");
        let main = src.join("main.rs");
        let root_file = if lib.is_file() {
            lib
        } else if main.is_file() {
            main
        } else {
            continue;
        };
        let name = if dir == root {
            // The workspace-root package; its directory name is whatever
            // the checkout happens to be called.
            "palb".to_owned()
        } else {
            dir.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "palb".to_owned())
        };
        let tier = std::fs::read_to_string(&root_file)
            .ok()
            .and_then(|text| parse_tier(&text));
        found.push(CrateInfo {
            name,
            src,
            root_file,
            tier,
        });
    }
    found
}

/// Extracts the `// palb:lint-tier = lib|bin` marker from a crate root.
pub fn parse_tier(text: &str) -> Option<Tier> {
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("// palb:lint-tier") {
            let rest = rest.trim_start_matches([' ', '=']).trim();
            return match rest {
                "lib" => Some(Tier::Lib),
                "bin" => Some(Tier::Bin),
                _ => None,
            };
        }
    }
    None
}

/// Runs every rule — per-file and call-graph — over every crate under
/// `root`, returning findings sorted by file and line. Integration-test
/// directories (`tests/`), benches and examples are out of scope by
/// construction: only `src/` trees are scanned, and `#[cfg(test)]`
/// regions inside them are exempt.
pub fn run(root: &Path) -> Vec<Finding> {
    run_inner(root, false)
}

/// [`run`] with every waiver disabled — the raw findings the rules would
/// report if no `// palb:allow` existed. The unused-waiver audit diffs
/// this against the waiver inventory.
pub fn run_ignoring_waivers(root: &Path) -> Vec<Finding> {
    run_inner(root, true)
}

fn run_inner(root: &Path, ignore_waivers: bool) -> Vec<Finding> {
    let crates = discover_crates(root);
    let mut findings = Vec::new();
    for krate in &crates {
        findings.extend(rules::check_crate_header(root, krate));
        let tier = krate.tier.unwrap_or(Tier::Lib);
        // Each crate's files are lexed once and shared between the
        // per-file rules and the call-graph pass.
        let mut parsed: Vec<(PathBuf, scan::SourceFile)> = Vec::new();
        for file in rust_sources(&krate.src) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let mut sf = scan::SourceFile::parse(&text);
            sf.ignore_waivers = ignore_waivers;
            findings.extend(rules::check_file(&rel, &sf, tier));
            parsed.push((rel, sf));
        }
        let graph = callgraph::CrateGraph::build(parsed);
        findings.extend(graph_rules::check_crate_graph(&graph, tier));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// One waiver comment found in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// File the waiver lives in, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line of the marker comment.
    pub line: usize,
    /// The rule name inside `palb:allow(...)`.
    pub rule: String,
}

impl fmt::Display for Waiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: unused `palb:allow({})` waiver — the rule no longer \
             fires here; delete the marker",
            self.file.display(),
            self.line,
            self.rule
        )
    }
}

/// Finds dead waivers: `// palb:allow(rule)` markers whose line no rule
/// would flag even with all waivers disabled. A same-line waiver covers
/// its own line; a comment-only waiver line covers the line below it.
pub fn unused_waivers(root: &Path) -> Vec<Waiver> {
    let raw = run_ignoring_waivers(root);
    // (file, 0-based line, marker) of every raw finding.
    let fired: std::collections::BTreeSet<(&Path, usize, &str)> = raw
        .iter()
        .map(|f| (f.file.as_path(), f.line - 1, f.rule.marker()))
        .collect();
    let mut dead = Vec::new();
    for krate in discover_crates(root) {
        for file in rust_sources(&krate.src) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let sf = scan::SourceFile::parse(&text);
            for (line, rule) in sf.waivers() {
                let own = fired.contains(&(rel.as_path(), line, rule.as_str()));
                let comment_only = sf
                    .lines
                    .get(line)
                    .is_some_and(|t| t.trim_start().starts_with("//"));
                let below =
                    comment_only && fired.contains(&(rel.as_path(), line + 1, rule.as_str()));
                if !own && !below {
                    dead.push(Waiver {
                        file: rel.clone(),
                        line: line + 1,
                        rule,
                    });
                }
            }
        }
    }
    dead.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    dead
}

/// Recursively lists the `.rs` files under `dir` in sorted order.
pub fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
