//! The lint rules. Each rule consumes a lexed [`SourceFile`] and emits
//! [`Finding`]s; policy decisions (which files are allowlisted, which
//! tokens are banned where) live here, lexing lives in [`crate::scan`].

use std::path::Path;

use crate::scan::SourceFile;
use crate::{CrateInfo, Finding, Rule, Tier};

/// Runs every per-file rule on one source file.
pub fn check_file(rel: &Path, sf: &SourceFile, tier: Tier) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_float_cmp(rel, sf, &mut findings);
    if tier == Tier::Lib {
        check_unwrap(rel, sf, &mut findings);
    }
    check_hot_path(rel, sf, &mut findings);
    check_obs_names(rel, sf, &mut findings);
    check_bb_options(rel, sf, &mut findings);
    findings
}

fn finding(rel: &Path, line: usize, rule: Rule, message: String) -> Finding {
    Finding {
        file: rel.to_path_buf(),
        line: line + 1,
        rule,
        message,
    }
}

/// Path suffix match that tolerates both `/` separators and the file
/// being reported relative to different roots (real tree vs. mirror).
fn path_ends_with(rel: &Path, suffix: &str) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    p == suffix || p.ends_with(&format!("/{suffix}"))
}

// ---------------------------------------------------------------------
// float-cmp
// ---------------------------------------------------------------------

/// Files allowed to spell raw float comparison: the one wrapper module.
fn float_cmp_allowlisted(rel: &Path) -> bool {
    path_ends_with(rel, "crates/num/src/approx.rs")
}

fn check_float_cmp(rel: &Path, sf: &SourceFile, out: &mut Vec<Finding>) {
    if float_cmp_allowlisted(rel) {
        return;
    }
    for (i, code) in sf.code.iter().enumerate() {
        if sf.in_test[i] || sf.allows(i, "float-cmp") {
            continue;
        }
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(at) = code[from..].find(op) {
                let at = from + at;
                from = at + op.len();
                // Skip `<=`/`>=`-adjacent false positives can't occur
                // (different substrings), but `===` never parses anyway.
                let lhs = token_before(code, at);
                let rhs = token_after(code, at + op.len());
                if is_float_literal(lhs) || is_float_literal(rhs) {
                    out.push(finding(
                        rel,
                        i,
                        Rule::FloatCmp,
                        format!(
                            "raw float comparison `{} {} {}`; use palb_num \
                             (is_zero / nonzero / f64_eq / approx_eq) or waive with \
                             `// palb:allow(float-cmp): <reason>`",
                            lhs, op, rhs
                        ),
                    ));
                }
            }
        }
    }
}

fn token_before(code: &str, at: usize) -> &str {
    let bytes = code.as_bytes();
    let mut end = at;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == ':' {
            start -= 1;
        } else {
            break;
        }
    }
    &code[start..end]
}

fn token_after(code: &str, at: usize) -> &str {
    let bytes = code.as_bytes();
    let mut start = at;
    while start < bytes.len() && bytes[start] == b' ' {
        start += 1;
    }
    let mut end = start;
    // A leading sign belongs to a numeric literal.
    if end < bytes.len() && bytes[end] == b'-' {
        end += 1;
    }
    while end < bytes.len() {
        let c = bytes[end] as char;
        if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == ':' {
            end += 1;
        } else {
            break;
        }
    }
    &code[start..end]
}

/// `1.0`, `-3.5e2`, `0.`, `2f64`, `f64::NAN` — things that make a
/// comparison unmistakably floating-point.
fn is_float_literal(tok: &str) -> bool {
    let tok = tok.strip_prefix('-').unwrap_or(tok);
    if tok.starts_with("f64::") || tok.starts_with("f32::") {
        return true;
    }
    let tok = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .unwrap_or(tok);
    let mut saw_digit = false;
    let mut saw_dot = false;
    for c in tok.chars() {
        match c {
            '0'..='9' | '_' => saw_digit = true,
            '.' => saw_dot = true,
            'e' | 'E' | '-' | '+' => {}
            _ => return false,
        }
    }
    saw_digit && saw_dot
}

// ---------------------------------------------------------------------
// unwrap
// ---------------------------------------------------------------------

fn check_unwrap(rel: &Path, sf: &SourceFile, out: &mut Vec<Finding>) {
    for (i, code) in sf.code.iter().enumerate() {
        if sf.in_test[i] || sf.allows(i, "unwrap") {
            continue;
        }
        for pat in [".unwrap()", ".expect("] {
            if code.contains(pat) {
                out.push(finding(
                    rel,
                    i,
                    Rule::Unwrap,
                    format!(
                        "`{pat}` in a lib-tier crate; return a structured error \
                         or waive with `// palb:allow(unwrap): <reason>`"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// hot-path
// ---------------------------------------------------------------------

/// Banned in every `// palb:hot-path` function: formatting machinery and
/// `String` construction. Shared with the transitive rule in
/// [`crate::graph_rules`], which hunts the same patterns in callees.
pub const HOT_BANNED: &[&str] = &[
    "format!",
    "String::new",
    "String::from",
    "String::with_capacity",
    ".to_string(",
    ".to_owned(",
    "push_str",
];

/// Additionally banned under `// palb:hot-path(no-alloc)`: any heap
/// container construction.
pub const NO_ALLOC_BANNED: &[&str] = &[
    "vec!",
    "Vec::new",
    "Vec::with_capacity",
    "Box::new",
    ".to_vec(",
    ".collect(",
];

fn check_hot_path(rel: &Path, sf: &SourceFile, out: &mut Vec<Finding>) {
    for (i, line) in sf.lines.iter().enumerate() {
        // A marker is a dedicated plain-comment line ("// palb:hot-path…"),
        // not a doc comment and not a string literal mentioning the marker
        // — otherwise the engine's own sources would self-trigger.
        let trimmed = line.trim_start();
        if !trimmed.starts_with("// palb:hot-path") {
            continue;
        }
        let no_alloc = trimmed.starts_with("// palb:hot-path(no-alloc)");
        // The marker governs the next `fn` and its brace-matched body.
        let Some(fn_line) = (i..sf.code.len()).find(|&j| {
            let c = &sf.code[j];
            c.contains("fn ") && !c.trim_start().starts_with('#')
        }) else {
            continue;
        };
        // A bodiless signature (trait method decl) has no span: without
        // this check the brace matcher used to swallow whatever follows —
        // including sibling `#[cfg(test)]` modules, whose `format!` calls
        // were then reported as violations.
        let (body_start, body_end) = match crate::callgraph::fn_body_span_from(&sf.code, fn_line) {
            Some(span) => span,
            None => continue,
        };
        for j in body_start..=body_end.min(sf.code.len() - 1) {
            if sf.in_test[j] || sf.allows(j, "hot-path") {
                continue;
            }
            let code = &sf.code[j];
            for pat in HOT_BANNED {
                if code.contains(pat) {
                    out.push(finding(
                        rel,
                        j,
                        Rule::HotPath,
                        format!("`{pat}` inside a `palb:hot-path` function"),
                    ));
                }
            }
            if no_alloc {
                for pat in NO_ALLOC_BANNED {
                    if code.contains(pat) {
                        out.push(finding(
                            rel,
                            j,
                            Rule::HotPath,
                            format!("`{pat}` inside a `palb:hot-path(no-alloc)` function"),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// obs-names
// ---------------------------------------------------------------------

/// Files allowed to define `palb_…` metric/span name literals.
fn obs_names_allowlisted(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    p.contains("crates/obs/src/") || path_ends_with(rel, "crates/core/src/obs.rs")
}

fn check_obs_names(rel: &Path, sf: &SourceFile, out: &mut Vec<Finding>) {
    if obs_names_allowlisted(rel) {
        return;
    }
    for (line, content) in &sf.strings {
        if sf.in_test[*line] || sf.allows(*line, "obs-names") {
            continue;
        }
        // palb:allow(obs-names): these are the rule's own prefix constants
        if content.starts_with("palb_") || content.starts_with("palb/") {
            out.push(finding(
                rel,
                *line,
                Rule::ObsNames,
                format!(
                    "metric/span name literal \"{content}\" outside obs::names; \
                     use the named constant from palb_core::obs::names"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// bb-options
// ---------------------------------------------------------------------

/// Files allowed to spell `BbOptions`: the deprecated alias definition
/// and the facade re-export that keeps it importable for one release.
fn bb_options_allowlisted(rel: &Path) -> bool {
    path_ends_with(rel, "crates/core/src/multilevel.rs")
        || path_ends_with(rel, "crates/core/src/lib.rs")
}

/// `BbOptions` is a deprecated alias for `SolverConfig`; new code must
/// use the builder (`SolverConfig::exact().threads(..)`). Tests are
/// exempt (they may pin the alias's deprecation behavior), and a site
/// that genuinely needs the old name can waive with
/// `// palb:allow(bb-options): <reason>`.
fn check_bb_options(rel: &Path, sf: &SourceFile, out: &mut Vec<Finding>) {
    if bb_options_allowlisted(rel) {
        return;
    }
    for (i, code) in sf.code.iter().enumerate() {
        if sf.in_test[i] || sf.allows(i, "bb-options") {
            continue;
        }
        let mut from = 0;
        while let Some(at) = code[from..].find("BbOptions") {
            let at = from + at;
            from = at + "BbOptions".len();
            // Require word boundaries so identifiers merely containing
            // the name don't fire.
            let before_ok = at == 0 || {
                let c = code.as_bytes()[at - 1] as char;
                !(c.is_ascii_alphanumeric() || c == '_')
            };
            let after = at + "BbOptions".len();
            let after_ok = after >= code.len() || {
                let c = code.as_bytes()[after] as char;
                !(c.is_ascii_alphanumeric() || c == '_')
            };
            if before_ok && after_ok {
                out.push(finding(
                    rel,
                    i,
                    Rule::BbOptions, // palb:allow(bb-options): the rule names itself
                    "direct `BbOptions` use; it is a deprecated alias — build a \
                     `SolverConfig` (e.g. `SolverConfig::exact().threads(n)`) or waive \
                     with `// palb:allow(bb-options): <reason>`"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// crate-header
// ---------------------------------------------------------------------

/// Checks a crate root for `#![forbid(unsafe_code)]` and the lint-tier
/// marker.
pub fn check_crate_header(root: &Path, krate: &CrateInfo) -> Vec<Finding> {
    let mut findings = Vec::new();
    let rel = krate
        .root_file
        .strip_prefix(root)
        .unwrap_or(&krate.root_file)
        .to_path_buf();
    let Ok(text) = std::fs::read_to_string(&krate.root_file) else {
        return findings;
    };
    if !text.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            file: rel.clone(),
            line: 1,
            rule: Rule::CrateHeader,
            message: format!(
                "crate `{}` root is missing `#![forbid(unsafe_code)]`",
                krate.name
            ),
        });
    }
    if krate.tier.is_none() {
        findings.push(Finding {
            file: rel,
            line: 1,
            rule: Rule::CrateHeader,
            message: format!(
                "crate `{}` root is missing a `// palb:lint-tier = lib|bin` marker",
                krate.name
            ),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lint(src: &str, tier: Tier) -> Vec<Finding> {
        check_file(
            &PathBuf::from("crates/x/src/a.rs"),
            &SourceFile::parse(src),
            tier,
        )
    }

    #[test]
    fn float_cmp_flags_literal_comparisons() {
        let f = lint("fn a(x: f64) -> bool { x == 0.0 }\n", Tier::Lib);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::FloatCmp);
        assert!(lint("fn a(x: f64) -> bool { x != 1.5e3 }\n", Tier::Lib)
            .iter()
            .any(|f| f.rule == Rule::FloatCmp));
        // Integers are fine; so are stringified floats and comments.
        assert!(lint("fn a(x: usize) -> bool { x == 0 }\n", Tier::Lib).is_empty());
        assert!(lint("// x == 0.0\nlet s = \"x == 0.0\";\n", Tier::Lib).is_empty());
    }

    #[test]
    fn float_cmp_respects_waivers_and_tests() {
        let waived = "fn a(x: f64) -> bool { x == 0.0 } // palb:allow(float-cmp): sentinel\n";
        assert!(lint(waived, Tier::Lib).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n fn a(x: f64) -> bool { x == 0.0 }\n}\n";
        assert!(lint(test_mod, Tier::Lib).is_empty());
    }

    #[test]
    fn unwrap_only_fires_in_lib_tier() {
        let src = "fn a() { let x: Option<u8> = None; x.unwrap(); }\n";
        assert_eq!(lint(src, Tier::Lib).len(), 1);
        assert!(lint(src, Tier::Bin).is_empty());
        let expect = "fn a() { let x: Option<u8> = None; x.expect(\"boom\"); }\n";
        assert_eq!(lint(expect, Tier::Lib)[0].rule, Rule::Unwrap);
    }

    #[test]
    fn hot_path_bans_format_and_no_alloc_bans_vec() {
        let plain = "// palb:hot-path\nfn f(v: &mut Vec<f64>) {\n    let s = format!(\"x\");\n    v.clone();\n}\n";
        let f = lint(plain, Tier::Bin);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::HotPath);
        let strict = "// palb:hot-path(no-alloc)\nfn f() {\n    let v = vec![1.0];\n}\n";
        assert_eq!(lint(strict, Tier::Bin)[0].rule, Rule::HotPath);
        // Vec construction is fine under the plain marker.
        let plain_vec = "// palb:hot-path\nfn f() {\n    let v = vec![1.0];\n}\n";
        assert!(lint(plain_vec, Tier::Bin).is_empty());
        // Code after the function body is not covered by the marker.
        let after = "// palb:hot-path\nfn f() {}\nfn g() { let s = format!(\"x\"); }\n";
        assert!(lint(after, Tier::Bin).is_empty());
    }

    #[test]
    fn hot_path_ignores_cfg_test_sibling_modules() {
        // Regression: a marker above a bodiless signature used to make
        // the brace matcher swallow everything up to the next balanced
        // `}` — including a sibling `#[cfg(test)]` module, whose
        // `format!` was then flagged. Bodiless fns now contribute no
        // span, and `#[cfg(test)]` lines inside a span stay exempt.
        let bodiless = concat!(
            "// palb:hot-path(no-alloc)\n",
            "fn fast(out: &mut [f64]);\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn helper() { let s = format!(\"x\"); let v = vec![1]; }\n",
            "}\n",
        );
        assert!(lint(bodiless, Tier::Lib).is_empty());
        let trait_decl = concat!(
            "trait T {\n",
            "    // palb:hot-path\n",
            "    fn fast(&self);\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn helper() { let s = format!(\"x\"); }\n",
            "}\n",
        );
        assert!(lint(trait_decl, Tier::Lib).is_empty());
    }

    #[test]
    fn obs_names_flags_stray_literals() {
        let f = lint(
            "fn a() { rec.counter_add(\"palb_foo_total\", 1); }\n",
            Tier::Lib,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ObsNames);
        // Allowed inside the registries.
        let reg = check_file(
            &PathBuf::from("crates/core/src/obs.rs"),
            &SourceFile::parse("const A: &str = \"palb_foo_total\";\n"),
            Tier::Lib,
        );
        assert!(reg.is_empty());
    }

    #[test]
    fn bb_options_flags_new_uses_outside_the_alias_home() {
        let f = lint("fn a() { let o = BbOptions::default(); }\n", Tier::Lib);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::BbOptions);
        // Word-boundary: containing identifiers don't fire.
        assert!(lint("struct MyBbOptionsLike;\n", Tier::Lib).is_empty());
        // Comments, strings, tests and waivers are exempt.
        assert!(lint("// BbOptions was the old name\n", Tier::Lib).is_empty());
        assert!(lint(
            "#[cfg(test)]\nmod tests {\n fn a() { let _ = BbOptions::default(); }\n}\n",
            Tier::Lib
        )
        .is_empty());
        assert!(lint(
            "fn a() { let _ = BbOptions::default(); } // palb:allow(bb-options): alias smoke\n",
            Tier::Lib
        )
        .is_empty());
        // The alias definition and the facade re-export stay legal.
        for home in ["crates/core/src/multilevel.rs", "crates/core/src/lib.rs"] {
            let f = check_file(
                &PathBuf::from(home),
                &SourceFile::parse("pub type BbOptions = SolverConfig;\n"),
                Tier::Lib,
            );
            assert!(f.is_empty(), "{home}: {f:?}");
        }
    }

    #[test]
    fn approx_module_is_float_cmp_exempt() {
        let f = check_file(
            &PathBuf::from("crates/num/src/approx.rs"),
            &SourceFile::parse("pub fn f64_eq(a: f64, b: f64) -> bool { a == 0.0 }\n"),
            Tier::Lib,
        );
        assert!(f.is_empty());
    }
}
