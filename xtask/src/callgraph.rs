//! Approximate intra-crate call graph, built on the stripped-source
//! scanner.
//!
//! The graph rules (determinism taint, lock-order, transitive no-alloc,
//! panic reachability) need to see *across* function boundaries, which
//! the per-function rules of [`crate::rules`] cannot. This module
//! extracts every `fn` in a crate — its module path (file-derived plus
//! inline `mod` blocks), owning `impl`/`trait` type, body span and
//! markers — then resolves call sites against that index:
//!
//! * **plain calls** `name(…)` resolve to a function of that name in the
//!   caller's own module, else to the unique crate-wide match; two or
//!   more matches in *other* modules are recorded as unresolved (we do
//!   not parse `use` statements, so cross-module imports of shadowed
//!   names are a documented blind spot);
//! * **qualified calls** `Type::name(…)` resolve against the `(owner,
//!   name)` index (the last path segment before the method is treated as
//!   the owner, so `crate::table::RouteTable::compile` works too);
//! * **method calls** `recv.name(…)` resolve to *every* impl or trait
//!   function of that name in the crate — a deliberate over-
//!   approximation that keeps dynamic dispatch (`Box<dyn Trait>`) and
//!   generic receivers sound for the safety rules, at the cost of
//!   spurious edges that the waiver/baseline machinery absorbs.
//!
//! Calls into other crates (std, external deps, sibling `palb_*` crates)
//! stay unresolved by construction: the graph is **intra-crate**. Each
//! decision-path or hot-path contract therefore re-anchors at the crate
//! boundary with its own marker (the simplex pivot loop is marked inside
//! `palb-lp` even though `palb-core` drives it).
//!
//! This is scanner-grade analysis, not name resolution: closures belong
//! to their enclosing `fn` (their body lines sit inside its span),
//! nested `fn`s own their lines (innermost span wins), trait signatures
//! without bodies become bodiless nodes, and macro-generated code is
//! invisible. Known-unresolvable shapes are asserted as such by the
//! fixture suite.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::scan::SourceFile;

/// How strict a `// palb:hot-path` marker is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotPathKind {
    /// `// palb:hot-path` — no formatting or `String` construction.
    Plain,
    /// `// palb:hot-path(no-alloc)` — additionally no heap containers.
    NoAlloc,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 0-based line of the call.
    pub line: usize,
    /// Byte column of the call's `(` on the stripped line.
    pub col: usize,
    /// Callee name token (the identifier before `(`).
    pub name: String,
    /// For `Type::name(...)` calls: the last qualifier segment.
    pub owner: Option<String>,
    /// True for `.name(...)` method calls.
    pub method: bool,
}

/// One function extracted from a crate's sources.
#[derive(Debug)]
pub struct FnInfo {
    /// File the function lives in, relative to the workspace root.
    pub file: PathBuf,
    /// Module path: file-derived segments plus inline `mod` blocks.
    pub module: Vec<String>,
    /// `impl`/`trait` owner type, when inside such a block.
    pub owner: Option<String>,
    /// The function's name.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// Inclusive 0-based body span; `None` for bodiless signatures.
    pub body: Option<(usize, usize)>,
    /// Declared with bare `pub` (crate-external surface).
    pub is_pub: bool,
    /// Carries a `// palb:decision-path` marker.
    pub decision_path: bool,
    /// Carries a `// palb:hot-path` marker.
    pub hot_path: Option<HotPathKind>,
    /// The function's signature line sits inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// Call sites found in the body (innermost-function attribution).
    pub calls: Vec<CallSite>,
}

impl FnInfo {
    /// `module::Owner::name`-style display path (for finding messages).
    pub fn path(&self) -> String {
        let mut s = String::new();
        for m in &self.module {
            s.push_str(m);
            s.push_str("::");
        }
        if let Some(o) = &self.owner {
            s.push_str(o);
            s.push_str("::");
        }
        s.push_str(&self.name);
        s
    }
}

/// The call graph of one crate: functions plus resolved edges.
#[derive(Debug, Default)]
pub struct CrateGraph {
    /// All extracted functions, in file/line order.
    pub fns: Vec<FnInfo>,
    /// Resolved edges: `edges[i]` lists callee indices of `fns[i]`,
    /// paired with the 0-based call-site line in the caller.
    pub edges: Vec<Vec<(usize, usize)>>,
    /// Parsed sources by relative path (shared with the rule pass so
    /// each file is lexed once).
    pub files: BTreeMap<PathBuf, SourceFile>,
    /// Names of struct fields / locals / params typed `HashMap`/`HashSet`
    /// anywhere in the crate (receiver set for the iteration-taint rule).
    pub hash_names: Vec<String>,
}

impl CrateGraph {
    /// Builds the graph for one crate from `(rel_path, source)` pairs.
    pub fn build(sources: Vec<(PathBuf, SourceFile)>) -> CrateGraph {
        let mut fns: Vec<FnInfo> = Vec::new();
        let mut hash_names: Vec<String> = Vec::new();
        let mut files = BTreeMap::new();
        for (rel, sf) in sources {
            extract_fns(&rel, &sf, &mut fns);
            collect_hash_names(&sf, &mut hash_names);
            files.insert(rel, sf);
        }
        hash_names.sort();
        hash_names.dedup();
        // Attribute call sites to the innermost function span, then
        // resolve them against the name indexes.
        let mut graph = CrateGraph {
            edges: vec![Vec::new(); fns.len()],
            fns,
            files,
            hash_names,
        };
        graph.extract_calls();
        graph.resolve();
        graph
    }

    /// Index of the innermost function whose body contains `line` of
    /// `file` (`None` between functions).
    pub fn enclosing_fn(&self, file: &Path, line: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (span_len, idx)
        for (i, f) in self.fns.iter().enumerate() {
            if f.file != file {
                continue;
            }
            if let Some((a, b)) = f.body {
                let lo = a.min(f.sig_line);
                if lo <= line && line <= b {
                    let len = b - lo;
                    if best.is_none_or(|(blen, _)| len < blen) {
                        best = Some((len, i));
                    }
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn extract_calls(&mut self) {
        let mut sites: Vec<(usize, CallSite)> = Vec::new();
        for (rel, sf) in &self.files {
            // Functions of this file, for innermost-span attribution.
            let file_fns: Vec<usize> = (0..self.fns.len())
                .filter(|&i| self.fns[i].file == *rel)
                .collect();
            for (line_no, code) in sf.code.iter().enumerate() {
                let trimmed = code.trim_start();
                if trimmed.starts_with('#') {
                    continue; // attributes: #[derive(...)], #[cfg(...)]
                }
                let owner_fn = file_fns
                    .iter()
                    .copied()
                    .filter_map(|i| {
                        let f = &self.fns[i];
                        let (a, b) = f.body?;
                        let lo = a.min(f.sig_line);
                        (lo <= line_no && line_no <= b).then_some((b - lo, i))
                    })
                    .min();
                let Some((_, owner_fn)) = owner_fn else {
                    continue;
                };
                // On the fn's own signature line, tokens before the body's
                // opening `{` are type positions (params, `impl Fn(usize)`
                // bounds), not calls; single-line fns keep the calls after
                // the brace.
                let min_col = if self.fns[owner_fn].sig_line == line_no {
                    match code.find('{') {
                        Some(brace) => brace,
                        None => continue,
                    }
                } else {
                    0
                };
                for site in call_sites_on_line(code, line_no) {
                    // `col` is the `(` position, so it is always > 0.
                    if site.col > min_col {
                        sites.push((owner_fn, site));
                    }
                }
            }
        }
        for (owner, site) in sites {
            self.fns[owner].calls.push(site);
        }
    }

    fn resolve(&mut self) {
        // name -> fn indices; (owner, name) -> fn indices.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
            if let Some(o) = &f.owner {
                by_owner.entry((o, &f.name)).or_default().push(i);
            }
        }
        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.fns.len()];
        for (i, f) in self.fns.iter().enumerate() {
            for call in &f.calls {
                let mut targets: Vec<usize> = Vec::new();
                if let Some(owner) = &call.owner {
                    if let Some(c) = by_owner.get(&(owner.as_str(), call.name.as_str())) {
                        targets.extend(c.iter().copied());
                    }
                } else if call.method {
                    // Method call: every impl/trait fn of that name —
                    // over-approximate, keeps dyn dispatch sound.
                    if let Some(c) = by_name.get(call.name.as_str()) {
                        targets.extend(c.iter().copied().filter(|&t| self.fns[t].owner.is_some()));
                    }
                } else if let Some(c) = by_name.get(call.name.as_str()) {
                    // Plain call: same-module free fns win; else a unique
                    // crate-wide free fn; else unresolved (shadowed).
                    let free: Vec<usize> = c
                        .iter()
                        .copied()
                        .filter(|&t| self.fns[t].owner.is_none())
                        .collect();
                    let local: Vec<usize> = free
                        .iter()
                        .copied()
                        .filter(|&t| self.fns[t].module == f.module)
                        .collect();
                    if !local.is_empty() {
                        targets.extend(local);
                    } else if free.len() == 1 {
                        targets.extend(free);
                    }
                }
                for t in targets {
                    if t != i {
                        edges[i].push((t, call.line));
                    }
                }
            }
        }
        for list in &mut edges {
            list.sort();
            list.dedup();
        }
        self.edges = edges;
    }

    /// Transitive callee closure of `roots` (including the roots), with
    /// BFS parents so rules can print one witness call chain. Returns
    /// `(reached, parent)` where `parent[f] = Some((caller, line))`.
    #[allow(clippy::type_complexity)]
    pub fn closure(&self, roots: &[usize]) -> (Vec<bool>, Vec<Option<(usize, usize)>>) {
        let mut reached = vec![false; self.fns.len()];
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; self.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if !reached[r] {
                reached[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &(callee, line) in &self.edges[f] {
                if !reached[callee] {
                    reached[callee] = true;
                    parent[callee] = Some((f, line));
                    queue.push_back(callee);
                }
            }
        }
        (reached, parent)
    }

    /// The witness chain `root -> … -> f`, as display paths.
    pub fn chain(&self, parent: &[Option<(usize, usize)>], f: usize) -> String {
        let mut names = vec![self.fns[f].path()];
        let mut cur = f;
        let mut hops = 0;
        while let Some((p, _)) = parent[cur] {
            names.push(self.fns[p].path());
            cur = p;
            hops += 1;
            if hops > 64 {
                break; // cycles cannot occur (parents form a tree); belt and braces
            }
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// True if `c` can continue an identifier.
fn ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Keywords and callable-looking non-calls to skip.
fn is_call_keyword(tok: &str) -> bool {
    matches!(
        tok,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "fn"
            | "move"
            | "else"
            | "in"
            | "as"
            | "await"
            | "Fn"
            | "FnMut"
            | "FnOnce"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
    )
}

/// Extracts call-shaped tokens (`ident(`/`a::b(`/`.m(`) from one stripped
/// code line.
fn call_sites_on_line(code: &str, line_no: usize) -> Vec<CallSite> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'(' {
            i += 1;
            continue;
        }
        // Token run directly before the paren: identifiers, `::`, `.`.
        let mut start = i;
        while start > 0 {
            let c = bytes[start - 1] as char;
            if ident_char(c) || c == ':' {
                start -= 1;
            } else {
                break;
            }
        }
        let tok = &code[start..i];
        i += 1;
        if tok.is_empty() {
            continue;
        }
        // Macro invocation (`name!(`) — the `!` sits before the token.
        if start > 0 && bytes[start - 1] == b'!' {
            continue;
        }
        let method = start > 0 && bytes[start - 1] == b'.';
        let segments: Vec<&str> = tok.split("::").filter(|s| !s.is_empty()).collect();
        let Some(&name) = segments.last() else {
            continue;
        };
        if name.is_empty() || !name.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
            continue; // tuple structs / enum variants / types
        }
        if is_call_keyword(name) || (segments.len() == 1 && is_call_keyword(tok)) {
            continue;
        }
        let owner = if segments.len() >= 2 {
            let o = segments[segments.len() - 2];
            // `Type::method(` — only an uppercase qualifier names an
            // impl/trait owner; `module::helper(` resolves by name.
            o.starts_with(|c: char| c.is_ascii_uppercase())
                .then(|| strip_generics(o))
        } else {
            None
        };
        if owner.is_none() && segments.len() >= 2 {
            // Fully-qualified module path (std::mem::take, crate::x::f):
            // resolve by bare name only when the path is crate-local.
            let head = segments[0];
            if !matches!(head, "crate" | "self" | "super") {
                continue;
            }
        }
        out.push(CallSite {
            line: line_no,
            col: i - 1,
            name: name.to_owned(),
            owner,
            method,
        });
    }
    out
}

/// `Foo<T>` → `Foo`.
fn strip_generics(s: &str) -> String {
    match s.find('<') {
        Some(at) => s[..at].to_owned(),
        None => s.to_owned(),
    }
}

/// Module path a file contributes: `crates/x/src/a/b.rs` → `["a", "b"]`,
/// with `lib.rs`/`main.rs`/`mod.rs` owning their directory.
fn file_module_path(rel: &Path) -> Vec<String> {
    let p = rel.to_string_lossy().replace('\\', "/");
    let Some(at) = p.find("/src/") else {
        return Vec::new();
    };
    let tail = &p[at + 5..];
    let mut segs: Vec<String> = tail.split('/').map(str::to_owned).collect();
    let Some(last) = segs.pop() else {
        return Vec::new();
    };
    match last.as_str() {
        "lib.rs" | "main.rs" | "mod.rs" => {}
        other => segs.push(other.trim_end_matches(".rs").to_owned()),
    }
    segs
}

#[derive(Debug)]
enum Ctx {
    Mod(String),
    Impl(String),
    /// Any other braced block (fn bodies are tracked separately).
    Other,
}

/// Extracts every `fn` of one file into `out`.
fn extract_fns(rel: &Path, sf: &SourceFile, out: &mut Vec<FnInfo>) {
    let file_mods = file_module_path(rel);
    // Context stack entries: (depth_after_open, ctx).
    let mut stack: Vec<(i64, Ctx)> = Vec::new();
    let mut depth: i64 = 0;
    for (i, code) in sf.code.iter().enumerate() {
        let trimmed = code.trim_start();
        // fn detection: "fn name" with a word boundary before `fn`.
        if let Some(name) = fn_name_on_line(code) {
            if !trimmed.starts_with("#") {
                let mut module = file_mods.clone();
                let mut owner = None;
                for (_, ctx) in &stack {
                    match ctx {
                        Ctx::Mod(m) => module.push(m.clone()),
                        Ctx::Impl(t) => owner = Some(t.clone()),
                        Ctx::Other => {}
                    }
                }
                let body = fn_body_span_from(&sf.code, i);
                let (decision_path, hot_path) = markers_above(sf, i);
                out.push(FnInfo {
                    file: rel.to_path_buf(),
                    module,
                    owner,
                    name,
                    sig_line: i,
                    body,
                    is_pub: trimmed.starts_with("pub ")
                        || trimmed.starts_with("pub const ")
                        || trimmed.starts_with("pub async "),
                    decision_path,
                    hot_path,
                    in_test: sf.in_test[i],
                    calls: Vec::new(),
                });
            }
        }
        // Track module / impl / other block openings on this line.
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if opens > 0 {
            let ctx = if let Some(m) = trimmed.strip_prefix("pub mod ") {
                Ctx::Mod(block_name(m))
            } else if let Some(m) = trimmed.strip_prefix("mod ") {
                Ctx::Mod(block_name(m))
            } else if trimmed.starts_with("impl ") || trimmed.starts_with("impl<") {
                Ctx::Impl(impl_type_name(trimmed))
            } else if let Some(t) = trimmed
                .strip_prefix("pub trait ")
                .or_else(|| trimmed.strip_prefix("trait "))
            {
                Ctx::Impl(block_name(t))
            } else {
                Ctx::Other
            };
            // Only the first `{` on the line owns the context; further
            // braces nest anonymously.
            stack.push((depth + 1, ctx));
            for _ in 1..opens {
                stack.push((depth + 2, Ctx::Other));
            }
        }
        depth += opens - closes;
        while let Some((d, _)) = stack.last() {
            if *d > depth {
                stack.pop();
            } else {
                break;
            }
        }
    }
}

/// The `fn` name declared on `code`, if any.
fn fn_name_on_line(code: &str) -> Option<String> {
    let mut from = 0;
    while let Some(at) = code[from..].find("fn ") {
        let at = from + at;
        from = at + 3;
        // Word boundary before `fn` (not `crate_fn `).
        if at > 0 && ident_char(code.as_bytes()[at - 1] as char) {
            continue;
        }
        let rest = code[at + 3..].trim_start();
        let end = rest.find(|c: char| !ident_char(c)).unwrap_or(rest.len());
        if end == 0 {
            continue;
        }
        return Some(rest[..end].to_owned());
    }
    None
}

/// Body span of the fn declared at `fn_line`, or `None` for a bodiless
/// signature (`fn f(&self) -> X;` in a trait). The search stops at a `;`
/// that appears before any `{` at signature nesting level.
pub(crate) fn fn_body_span_from(code: &[String], fn_line: usize) -> Option<(usize, usize)> {
    let mut depth: i64 = 0;
    let mut opened = false;
    let mut paren: i64 = 0;
    for (j, line) in code.iter().enumerate().skip(fn_line) {
        for c in line.chars() {
            match c {
                '(' | '[' => {
                    if !opened {
                        paren += 1;
                    }
                }
                ')' | ']' => {
                    if !opened {
                        paren -= 1;
                    }
                }
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                ';' if !opened && paren <= 0 => return None,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return Some((fn_line, j));
        }
    }
    None
}

/// Scans the contiguous comment/attribute block above `fn_line` for
/// `// palb:decision-path` and `// palb:hot-path[(no-alloc)]` markers.
fn markers_above(sf: &SourceFile, fn_line: usize) -> (bool, Option<HotPathKind>) {
    let mut decision = false;
    let mut hot = None;
    let mut j = fn_line;
    while j > 0 {
        j -= 1;
        let raw = sf.lines[j].trim_start();
        if !(raw.starts_with("//") || raw.starts_with("#[") || raw.starts_with("#!")) {
            break;
        }
        if raw.starts_with("// palb:decision-path") {
            decision = true;
        } else if raw.starts_with("// palb:hot-path(no-alloc)") {
            hot = Some(HotPathKind::NoAlloc);
        } else if raw.starts_with("// palb:hot-path") {
            hot.get_or_insert(HotPathKind::Plain);
        }
    }
    (decision, hot)
}

/// First identifier of a `mod X {` / `trait X {` header.
fn block_name(rest: &str) -> String {
    let end = rest.find(|c: char| !ident_char(c)).unwrap_or(rest.len());
    rest[..end].to_owned()
}

/// The type an `impl` block owns: `impl Foo {`, `impl<T> Foo<T> {`,
/// `impl Trait for Foo {` → `Foo`.
fn impl_type_name(line: &str) -> String {
    let rest = line.trim_start_matches("impl");
    // Skip the generic parameter list, honoring nesting.
    let rest = if let Some(r) = rest.strip_prefix('<') {
        let mut depth = 1i32;
        let mut at = 0usize;
        for (k, c) in r.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        at = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        &r[at..]
    } else {
        rest
    };
    let rest = rest.trim();
    let rest = match rest.find(" for ") {
        Some(at) => rest[at + 5..].trim(),
        None => rest,
    };
    // Last path segment before generics / where / brace.
    let end = rest
        .find(|c: char| c == '<' || c == ' ' || c == '{')
        .unwrap_or(rest.len());
    let seg = &rest[..end];
    seg.rsplit("::").next().unwrap_or(seg).to_owned()
}

/// Collects identifiers typed or initialized as `HashMap`/`HashSet`
/// (struct fields, locals, params) from one file.
fn collect_hash_names(sf: &SourceFile, out: &mut Vec<String>) {
    for (i, code) in sf.code.iter().enumerate() {
        if sf.in_test[i] {
            continue;
        }
        for marker in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(at) = code[from..].find(marker) {
                let at = from + at;
                from = at + marker.len();
                if at > 0 && ident_char(code.as_bytes()[at - 1] as char) {
                    continue;
                }
                // Walk left past `: `, `= `, `: &mut `, `= std::collections::` …
                let mut before = code[..at].trim_end();
                loop {
                    let next = before
                        .trim_end_matches("std::collections::")
                        .trim_end_matches(['&', ' '])
                        .trim_end();
                    let next = next.strip_suffix("mut").unwrap_or(next).trim_end();
                    if next == before {
                        break;
                    }
                    before = next;
                }
                let Some(before) = before
                    .strip_suffix(':')
                    .or_else(|| before.strip_suffix('='))
                else {
                    continue;
                };
                let before = before.trim_end();
                let end = before.len();
                let mut start = end;
                let bytes = before.as_bytes();
                while start > 0 && ident_char(bytes[start - 1] as char) {
                    start -= 1;
                }
                if start < end {
                    let name = &before[start..end];
                    if name != "mut" && !name.is_empty() {
                        out.push(name.to_owned());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_names_and_spans() {
        let sf = SourceFile::parse(
            "pub fn alpha() {\n    beta();\n}\nfn beta() {}\ntrait T {\n    fn decl(&self) -> usize;\n}\n",
        );
        let mut fns = Vec::new();
        extract_fns(Path::new("crates/x/src/a.rs"), &sf, &mut fns);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "decl"]);
        assert_eq!(fns[0].body, Some((0, 2)));
        assert!(fns[0].is_pub);
        assert_eq!(fns[1].body, Some((3, 3)));
        assert_eq!(fns[2].body, None, "trait decl has no body");
        assert_eq!(fns[2].owner.as_deref(), Some("T"));
    }

    #[test]
    fn impl_owner_extraction() {
        assert_eq!(impl_type_name("impl Foo {"), "Foo");
        assert_eq!(impl_type_name("impl<T: Clone> Foo<T> {"), "Foo");
        assert_eq!(impl_type_name("impl Display for Bar {"), "Bar");
        assert_eq!(
            impl_type_name("impl<'a, T> Trait<T> for baz::Qux<'a> {"),
            "Qux"
        );
    }

    #[test]
    fn call_site_shapes() {
        let sites = call_sites_on_line("let x = helper(1) + Type::method(2); recv.call_me(3);", 0);
        let names: Vec<(&str, Option<&str>, bool)> = sites
            .iter()
            .map(|s| (s.name.as_str(), s.owner.as_deref(), s.method))
            .collect();
        assert_eq!(
            names,
            vec![
                ("helper", None, false),
                ("method", Some("Type"), false),
                ("call_me", None, true),
            ]
        );
        // Macros, keywords, constructors and foreign paths are skipped.
        assert!(call_sites_on_line("if (x) { format!(\"y\") }", 0).is_empty());
        assert!(call_sites_on_line("let v = Some(1);", 0).is_empty());
        assert!(call_sites_on_line("std::mem::take(&mut x)", 0).is_empty());
        assert_eq!(call_sites_on_line("crate::util::helper()", 0).len(), 1);
    }

    #[test]
    fn hash_name_collection() {
        let sf = SourceFile::parse(
            "struct S {\n    map: HashMap<K, V>,\n}\nfn f(seen: &mut HashSet<u8>) {\n    let local = std::collections::HashMap::new();\n}\n",
        );
        let mut names = Vec::new();
        collect_hash_names(&sf, &mut names);
        names.sort();
        assert_eq!(names, vec!["local", "map", "seen"]);
    }

    #[test]
    fn file_module_paths() {
        assert!(file_module_path(Path::new("crates/x/src/lib.rs")).is_empty());
        assert_eq!(
            file_module_path(Path::new("crates/x/src/a.rs")),
            vec!["a".to_owned()]
        );
        assert_eq!(
            file_module_path(Path::new("crates/x/src/a/b.rs")),
            vec!["a".to_owned(), "b".to_owned()]
        );
        assert_eq!(
            file_module_path(Path::new("crates/x/src/a/mod.rs")),
            vec!["a".to_owned()]
        );
    }
}
