//! Minimal JSON reading/writing — just enough for the baseline ratchet
//! file and the SARIF validation tests, with zero dependencies.
//!
//! The writer side is a handful of escape helpers (the SARIF and
//! baseline emitters build their documents by hand, which keeps key
//! order deterministic). The reader side is a small recursive-descent
//! parser into a [`Value`] tree; it accepts the JSON this crate itself
//! writes plus ordinary hand-edited baselines, and rejects anything
//! structurally malformed with a byte-offset error.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64; the baseline only uses integers).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` because key order never matters here.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` on non-objects too).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Escapes `s` as a JSON string body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not needed by our own
                        // output; map lone surrogates to the replacement
                        // character rather than failing.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 sequences pass through unmodified.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_shapes_we_emit() {
        let v = parse(
            r#"{"version": 1, "counts": {"a/b.rs|unwrap": 3}, "list": [1, "x", true, null]}"#,
        )
        .unwrap();
        assert_eq!(v.get("version").and_then(Value::as_num), Some(1.0));
        assert_eq!(
            v.get("counts")
                .and_then(|c| c.get("a/b.rs|unwrap"))
                .and_then(Value::as_num),
            Some(3.0)
        );
        assert_eq!(
            v.get("list").and_then(Value::as_arr).map(<[Value]>::len),
            Some(4)
        );
    }

    #[test]
    fn escapes_and_unescapes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let v = parse("\"a\\\"b\\\\c\\nd\\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
