//! The call-graph-aware rule families.
//!
//! Four analyses run over one crate's [`CrateGraph`]:
//!
//! * **determinism** — taint sources (`Instant::now`, `SystemTime`,
//!   `thread::current().id()`, OS randomness, `HashMap`/`HashSet`
//!   *iteration*) reachable from a `// palb:decision-path` function are
//!   errors unless waived with `// palb:allow(determinism): reason`.
//!   The waived sites form the project's *enumerated carve-out
//!   registry* (the `SolverBudget` wall-clock stop, the serve-layer
//!   latency histograms); everything else on a decision path must be a
//!   pure function of its inputs.
//! * **lock-order** — every `Mutex`/`RwLock` acquisition is recorded
//!   per function; held-lock sets propagate over the call graph
//!   (guards are assumed held to the end of the acquiring function — a
//!   sound over-approximation) and pairwise orderings that appear in
//!   both directions are deadlock candidates.
//! * **trans-alloc** — `// palb:hot-path` closes over callees: the
//!   banned construction patterns of the body rule are also hunted in
//!   everything the marked function can reach, catching allocation
//!   smuggled through helpers.
//! * **panic-path** — `.unwrap()` / `.expect(` / `panic!` family and
//!   bare `[index]` expressions transitively reachable from a lib-tier
//!   `pub fn` are reported with a witness call chain. Unwrap-family
//!   sites already waived for the per-function `unwrap` rule stay
//!   waived here (one audit, one marker). The indexing findings are the
//!   large audited-legacy class the baseline ratchet tolerates and
//!   counts down.

use std::path::Path;

use crate::callgraph::{CrateGraph, HotPathKind};
use crate::rules::{HOT_BANNED, NO_ALLOC_BANNED};
use crate::scan::SourceFile;
use crate::{Finding, Rule, Tier};

/// Runs all four graph rule families over one crate.
pub fn check_crate_graph(graph: &CrateGraph, tier: Tier) -> Vec<Finding> {
    let mut out = Vec::new();
    check_determinism(graph, &mut out);
    check_lock_order(graph, &mut out);
    check_trans_alloc(graph, &mut out);
    if tier == Tier::Lib {
        check_panic_path(graph, &mut out);
    }
    out
}

fn finding(file: &Path, line: usize, rule: Rule, message: String) -> Finding {
    Finding {
        file: file.to_path_buf(),
        line: line + 1,
        rule,
        message,
    }
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

/// Wall-clock / thread-identity / OS-randomness patterns. `HashMap`
/// iteration is detected separately (it needs the receiver name set).
const TAINT_PATTERNS: &[(&str, &str)] = &[
    ("Instant::now(", "wall clock"),
    ("SystemTime::now(", "wall clock"),
    ("UNIX_EPOCH", "wall clock"),
    ("thread::current(", "thread identity"),
    ("ThreadId", "thread identity"),
    ("thread_rng(", "OS randomness"),
    ("from_entropy(", "OS randomness"),
    ("getrandom(", "OS randomness"),
    ("rand::random(", "OS randomness"),
    ("RandomState", "randomized hasher"),
    ("DefaultHasher", "randomized hasher"),
];

/// Iteration adaptors whose order is the hasher's, not the program's.
const HASH_ITER: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

/// Taint sites on one line: fixed patterns plus hash-iteration on a
/// receiver from the crate's `HashMap`/`HashSet` name set.
fn taint_on_line(code: &str, hash_names: &[String]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (pat, what) in TAINT_PATTERNS {
        if let Some(at) = code.find(pat) {
            out.push((at, format!("`{}` ({what})", pat.trim_end_matches('('))));
        }
    }
    for pat in HASH_ITER {
        let mut from = 0;
        while let Some(at) = code[from..].find(pat) {
            let at = from + at;
            from = at + pat.len();
            let recv = receiver_before(code, at);
            if hash_names.iter().any(|n| n == recv) {
                out.push((
                    at,
                    format!("hash-order iteration `{recv}{}`", pat.trim_end_matches('(')),
                ));
            }
        }
    }
    // `for x in map` / `for x in &map` over a hash-typed name.
    if let Some(at) = code.find(" in ") {
        let tail = code[at + 4..].trim_start().trim_start_matches('&');
        let end = tail
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(tail.len());
        let name = &tail[..end];
        if code.trim_start().starts_with("for ") && hash_names.iter().any(|n| n == name) {
            out.push((at, format!("hash-order iteration `for … in {name}`")));
        }
    }
    out
}

/// The identifier immediately before position `at` (receiver of a
/// method-call chain), skipping one `self.` qualifier.
fn receiver_before(code: &str, at: usize) -> &str {
    let bytes = code.as_bytes();
    let mut start = at;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_ascii_alphanumeric() || c == '_' {
            start -= 1;
        } else {
            break;
        }
    }
    &code[start..at]
}

fn check_determinism(graph: &CrateGraph, out: &mut Vec<Finding>) {
    let roots: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| graph.fns[i].decision_path && !graph.fns[i].in_test)
        .collect();
    if roots.is_empty() {
        return;
    }
    let (reached, parent) = graph.closure(&roots);
    for (i, f) in graph.fns.iter().enumerate() {
        if !reached[i] || f.in_test {
            continue;
        }
        let Some((a, b)) = f.body else { continue };
        let Some(sf) = graph.files.get(&f.file) else {
            continue;
        };
        for j in a..=b.min(sf.code.len() - 1) {
            if sf.in_test[j] || sf.allows(j, "determinism") {
                continue;
            }
            for (_, what) in taint_on_line(&sf.code[j], &graph.hash_names) {
                out.push(finding(
                    &f.file,
                    j,
                    Rule::Determinism,
                    format!(
                        "{what} on the decision path {}; make the site a pure function \
                         of its inputs (BTreeMap / sorted vec / seed-pure counter hash) \
                         or enumerate the carve-out with \
                         `// palb:allow(determinism): <reason>`",
                        graph.chain(&parent, i)
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------

/// A lock acquisition: `(line, column, lock name)`. Lock identity is the
/// last identifier of the receiver chain (`self.metrics.lock()` →
/// `metrics`); the column orders multiple acquisitions on one line.
fn lock_sites(sf: &SourceFile, a: usize, b: usize) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for j in a..=b.min(sf.code.len() - 1) {
        if sf.in_test[j] {
            continue;
        }
        let code = &sf.code[j];
        for pat in [".lock()", ".read()", ".write()"] {
            let mut from = 0;
            while let Some(at) = code[from..].find(pat) {
                let at = from + at;
                from = at + pat.len();
                let recv = receiver_before(code, at);
                if !recv.is_empty() {
                    out.push((j, at, recv.to_owned()));
                }
            }
        }
    }
    out.sort();
    out
}

fn check_lock_order(graph: &CrateGraph, out: &mut Vec<Finding>) {
    // Per function: its own acquisitions, in (line, column) order.
    let mut own: Vec<Vec<(usize, usize, String)>> = Vec::with_capacity(graph.fns.len());
    for f in &graph.fns {
        let sites = match f.body {
            Some((a, b)) => match graph.files.get(&f.file) {
                Some(sf) => lock_sites(sf, a, b),
                None => Vec::new(),
            },
            None => Vec::new(),
        };
        own.push(sites);
    }
    // Transitive lock sets (may-acquire) per function, via fixpoint.
    let mut acq: Vec<Vec<String>> = own
        .iter()
        .map(|s| {
            let mut v: Vec<String> = s.iter().map(|(_, _, n)| n.clone()).collect();
            v.sort();
            v.dedup();
            v
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..graph.fns.len() {
            for &(callee, _) in &graph.edges[i] {
                let extra: Vec<String> = acq[callee]
                    .iter()
                    .filter(|n| !acq[i].contains(n))
                    .cloned()
                    .collect();
                if !extra.is_empty() {
                    acq[i].extend(extra);
                    acq[i].sort();
                    changed = true;
                }
            }
        }
    }
    // Ordered pairs observed anywhere: acquire L, then (still holding,
    // by over-approximation) acquire M directly or through a callee.
    // pair -> first witness (file, line, description).
    let mut pairs: std::collections::BTreeMap<
        (String, String),
        (std::path::PathBuf, usize, String),
    > = std::collections::BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some(sf) = graph.files.get(&f.file) else {
            continue;
        };
        for (li, lc, l) in &own[i] {
            if sf.allows(*li, "lock-order") {
                continue;
            }
            // Later direct acquisitions in the same body.
            for (mj, mc, m) in &own[i] {
                if (mj, mc) > (li, lc) && m != l {
                    pairs.entry((l.clone(), m.clone())).or_insert_with(|| {
                        (
                            f.file.clone(),
                            *li,
                            format!("`{}` acquires `{l}` then `{m}`", f.path()),
                        )
                    });
                }
            }
            // Locks acquired by calls made at or after this acquisition
            // (a call on the acquisition's own line counts as after — the
            // guard is live for the rest of the statement).
            for &(callee, cline) in &graph.edges[i] {
                if cline < *li {
                    continue;
                }
                for m in &acq[callee] {
                    if m != l {
                        pairs.entry((l.clone(), m.clone())).or_insert_with(|| {
                            (
                                f.file.clone(),
                                *li,
                                format!(
                                    "`{}` acquires `{l}` then calls `{}` which may acquire `{m}`",
                                    f.path(),
                                    graph.fns[callee].path()
                                ),
                            )
                        });
                    }
                }
            }
        }
    }
    for ((l, m), (file, line, how)) in &pairs {
        if l < m {
            if let Some((_, _, rev)) = pairs.get(&(m.clone(), l.clone())) {
                out.push(finding(
                    file,
                    *line,
                    Rule::LockOrder,
                    format!(
                        "inconsistent lock order between `{l}` and `{m}`: {how}, but \
                         elsewhere {rev}; pick one order or waive with \
                         `// palb:allow(lock-order): <reason>`"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// trans-alloc (transitive hot-path enforcement)
// ---------------------------------------------------------------------

fn check_trans_alloc(graph: &CrateGraph, out: &mut Vec<Finding>) {
    for strict in [false, true] {
        let roots: Vec<usize> = (0..graph.fns.len())
            .filter(|&i| {
                !graph.fns[i].in_test
                    && match graph.fns[i].hot_path {
                        Some(HotPathKind::NoAlloc) => true,
                        Some(HotPathKind::Plain) => !strict,
                        None => false,
                    }
            })
            .collect();
        if roots.is_empty() {
            continue;
        }
        let (reached, parent) = graph.closure(&roots);
        for (i, f) in graph.fns.iter().enumerate() {
            // The marked body itself is the per-function rule's job;
            // this rule owns everything *called from* it.
            if !reached[i] || f.in_test || parent[i].is_none() {
                continue;
            }
            let Some((a, b)) = f.body else { continue };
            let Some(sf) = graph.files.get(&f.file) else {
                continue;
            };
            let banned: &[&str] = if strict { NO_ALLOC_BANNED } else { HOT_BANNED };
            for j in a..=b.min(sf.code.len() - 1) {
                if sf.in_test[j] || sf.allows(j, "trans-alloc") || sf.allows(j, "hot-path") {
                    continue;
                }
                for pat in banned {
                    if sf.code[j].contains(pat) {
                        out.push(finding(
                            &f.file,
                            j,
                            Rule::TransAlloc,
                            format!(
                                "`{pat}` reachable from a `palb:hot-path{}` function via {}; \
                                 hoist the allocation to the caller, use a scratch buffer, or \
                                 waive with `// palb:allow(trans-alloc): <reason>`",
                                if strict { "(no-alloc)" } else { "" },
                                graph.chain(&parent, i)
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// panic-path
// ---------------------------------------------------------------------

/// Panic-family call patterns (indexing is detected structurally).
const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Bare `[expr]` index positions on a stripped line: a `[` whose
/// preceding non-space char ends an expression (identifier, `)`, `]`).
/// Attribute lines and slice-type positions (`&[`, `: [`) never match.
fn index_sites(code: &str) -> usize {
    let trimmed = code.trim_start();
    if trimmed.starts_with('#') {
        return 0;
    }
    let bytes = code.as_bytes();
    let mut count = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if prev.is_ascii_alphanumeric() || prev == '_' || prev == ')' || prev == ']' {
            count += 1;
        }
    }
    count
}

fn check_panic_path(graph: &CrateGraph, out: &mut Vec<Finding>) {
    let roots: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| graph.fns[i].is_pub && !graph.fns[i].in_test)
        .collect();
    if roots.is_empty() {
        return;
    }
    let (reached, parent) = graph.closure(&roots);
    for (i, f) in graph.fns.iter().enumerate() {
        if !reached[i] || f.in_test {
            continue;
        }
        let Some((a, b)) = f.body else { continue };
        let Some(sf) = graph.files.get(&f.file) else {
            continue;
        };
        for j in a..=b.min(sf.code.len() - 1) {
            // A site audited for the per-function unwrap rule is audited
            // for reachability too — one marker covers both.
            if sf.in_test[j] || sf.allows(j, "panic-path") || sf.allows(j, "unwrap") {
                continue;
            }
            let code = &sf.code[j];
            for pat in PANIC_PATTERNS {
                if code.contains(pat) {
                    out.push(finding(
                        &f.file,
                        j,
                        Rule::PanicPath,
                        format!(
                            "`{pat}` reachable from public API via {}",
                            graph.chain(&parent, i)
                        ),
                    ));
                }
            }
            let idx = index_sites(code);
            for _ in 0..idx {
                out.push(finding(
                    &f.file,
                    j,
                    Rule::PanicPath,
                    format!(
                        "`[index]` (potential panic) reachable from public API via {}",
                        graph.chain(&parent, i)
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn graph_of(src: &str) -> CrateGraph {
        CrateGraph::build(vec![(
            PathBuf::from("crates/x/src/a.rs"),
            SourceFile::parse(src),
        )])
    }

    #[test]
    fn taint_patterns_and_hash_iteration() {
        let names = vec!["map".to_owned()];
        assert_eq!(taint_on_line("let t = Instant::now();", &names).len(), 1);
        assert_eq!(taint_on_line("for (k, v) in &map {", &names).len(), 1);
        assert_eq!(taint_on_line("map.iter().count()", &names).len(), 1);
        // Lookup is deterministic — only iteration taints.
        assert!(taint_on_line("map.get(&k)", &names).is_empty());
        // Iteration over a non-hash name is fine.
        assert!(taint_on_line("vec.iter().sum()", &names).is_empty());
    }

    #[test]
    fn determinism_flags_taint_reached_through_a_helper() {
        let g = graph_of(
            "// palb:decision-path\npub fn decide() { helper(); }\nfn helper() { let t = std::time::Instant::now(); }\n",
        );
        let mut out = Vec::new();
        check_determinism(&g, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, Rule::Determinism);
        assert!(
            out[0].message.contains("decide -> a::helper"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn lock_order_flags_inconsistent_pairs() {
        let g = graph_of(
            "fn ab(a: &M, b: &M) { let _x = a.lock(); let _y = b.lock(); }\nfn ba(a: &M, b: &M) { let _y = b.lock(); let _x = a.lock(); }\n",
        );
        let mut out = Vec::new();
        check_lock_order(&g, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, Rule::LockOrder);
        // Consistent ordering stays clean.
        let g2 = graph_of(
            "fn ab(a: &M, b: &M) { let _x = a.lock(); let _y = b.lock(); }\nfn ab2(a: &M, b: &M) { let _x = a.lock(); let _y = b.lock(); }\n",
        );
        let mut out2 = Vec::new();
        check_lock_order(&g2, &mut out2);
        assert!(out2.is_empty(), "{out2:?}");
    }

    #[test]
    fn lock_order_sees_through_calls() {
        let g = graph_of(
            "fn outer(a: &M, b: &M) { let _x = a.lock(); inner(b); }\nfn inner(b: &M) { let _y = b.lock(); }\nfn rev(a: &M, b: &M) { let _y = b.lock(); let _x = a.lock(); }\n",
        );
        let mut out = Vec::new();
        check_lock_order(&g, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("inner"), "{}", out[0].message);
    }

    #[test]
    fn trans_alloc_catches_helpers_but_not_the_marked_body() {
        let g = graph_of(
            "// palb:hot-path(no-alloc)\nfn fast() { helper(); }\nfn helper() { let v = Vec::new(); }\n",
        );
        let mut out = Vec::new();
        check_trans_alloc(&g, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, Rule::TransAlloc);
        // The marked body itself belongs to the per-function rule.
        let g2 = graph_of("// palb:hot-path(no-alloc)\nfn fast() { let v = Vec::new(); }\n");
        let mut out2 = Vec::new();
        check_trans_alloc(&g2, &mut out2);
        assert!(out2.is_empty(), "{out2:?}");
    }

    #[test]
    fn panic_path_reports_reachable_unwraps_and_indexing() {
        let g = graph_of(
            "pub fn api() { helper(); }\nfn helper(v: &[u8]) { let x = v[0]; let y: Option<u8> = None; y.unwrap(); }\n",
        );
        let mut out = Vec::new();
        check_panic_path(&g, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|f| f.rule == Rule::PanicPath));
        // An unwaived fn not reachable from pub stays unreported.
        let g2 = graph_of("fn private_only(v: &[u8]) -> u8 { v[0] }\n");
        let mut out2 = Vec::new();
        check_panic_path(&g2, &mut out2);
        assert!(out2.is_empty(), "{out2:?}");
    }

    #[test]
    fn index_site_shapes() {
        assert_eq!(index_sites("let x = v[0];"), 1);
        assert_eq!(index_sites("m[(r, c)] = m[(r, n)];"), 2);
        assert_eq!(index_sites("fn f(v: &[u8]) -> [u8; 2] {"), 0);
        assert_eq!(index_sites("#[derive(Debug)]"), 0);
        assert_eq!(index_sites("let a = [0u8; 4];"), 0);
    }
}
