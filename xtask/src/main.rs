// palb:lint-tier = bin
//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//!
//! * `analyze` — run the project lint engine (per-function rules plus
//!   the call-graph pass) over the whole workspace and gate on the
//!   committed `analyze-baseline.json` ratchet: findings beyond a
//!   bucket's frozen count fail the build, legacy debt inside it does
//!   not. Flags:
//!   * `--report <path>` — write the full text report (CI artifact);
//!   * `--format text|sarif` — stdout format;
//!   * `--sarif <path>` — also write a SARIF 2.1.0 document (CI uploads
//!     it to code scanning);
//!   * `--baseline <path>` — ratchet file (default
//!     `analyze-baseline.json` at the workspace root);
//!   * `--update-baseline` — rewrite the ratchet to the current tree;
//!   * `--unused-waivers` — additionally fail on `palb:allow` markers
//!     whose rule no longer fires on their line.
//! * `loom` — model-check the parallel-solver protocols: runs the
//!   `#![cfg(loom)]` test targets with `RUSTFLAGS="--cfg loom"` in
//!   release mode and bounded preemptions.
//! * `miri` — run the numeric/observability leaf crates under Miri.
//! * `tsan` — run the parallel branch-and-bound suites under
//!   ThreadSanitizer (nightly, `-Z build-std`).
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use xtask::baseline::{Baseline, Evaluation};
use xtask::{find_workspace_root, run, sarif, unused_waivers};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("loom") => loom(),
        Some("miri") => miri(),
        Some("tsan") => tsan(),
        _ => {
            eprintln!(
                "usage: cargo xtask <analyze [--report <path>] [--format text|sarif] \
                 [--sarif <path>] [--baseline <path>] [--update-baseline] \
                 [--unused-waivers] | loom | miri | tsan>"
            );
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    find_workspace_root(&start).unwrap_or(start)
}

fn analyze(args: &[String]) -> ExitCode {
    let mut report: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut format = "text".to_owned();
    let mut update_baseline = false;
    let mut check_waivers = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => report = it.next().map(PathBuf::from),
            "--sarif" => sarif_path = it.next().map(PathBuf::from),
            "--baseline" => baseline_path = it.next().map(PathBuf::from),
            "--format" => {
                format = it.next().cloned().unwrap_or_default();
                if format != "text" && format != "sarif" {
                    eprintln!("--format must be `text` or `sarif`, got `{format}`");
                    return ExitCode::from(2);
                }
            }
            "--update-baseline" => update_baseline = true,
            "--unused-waivers" => check_waivers = true,
            other => {
                eprintln!("unknown analyze flag: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = workspace_root();
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("analyze-baseline.json"));
    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bad baseline {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let eval = Evaluation::new(run(&root), &baseline);

    // Full text report: every finding plus the ratchet verdict.
    let mut body = String::new();
    for f in &eval.findings {
        body.push_str(&f.to_string());
        body.push('\n');
    }
    for (k, (cur, allowed)) in &eval.over {
        body.push_str(&format!(
            "REGRESSION {k}: {cur} finding(s), baseline allows {allowed}\n"
        ));
    }
    for (k, (cur, allowed)) in &eval.retired {
        body.push_str(&format!(
            "retired {k}: {cur} finding(s), baseline allowed {allowed} — \
             run `cargo xtask analyze --update-baseline` to lock in the win\n"
        ));
    }

    if format == "sarif" {
        print!("{}", sarif::render(&eval));
    } else {
        print!("{body}");
    }
    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, sarif::render(&eval)) {
            eprintln!("failed to write sarif {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("sarif written to {}", path.display());
    }
    if let Some(path) = &report {
        let header = format!(
            "# cargo xtask analyze — {} finding(s), {} new vs baseline\n",
            eval.findings.len(),
            eval.regressions.len()
        );
        if let Err(e) = std::fs::write(path, format!("{header}{body}")) {
            eprintln!("failed to write report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {}", path.display());
    }
    if update_baseline {
        let frozen = Baseline::from_findings(&eval.findings);
        if let Err(e) = std::fs::write(&baseline_path, frozen.to_json()) {
            eprintln!("failed to write baseline {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "baseline updated: {} bucket(s) written to {}",
            frozen.counts.len(),
            baseline_path.display()
        );
    }

    let mut failed = false;
    if check_waivers {
        let dead = unused_waivers(&root);
        for w in &dead {
            eprintln!("{w}");
        }
        if !dead.is_empty() {
            eprintln!("xtask analyze: {} unused waiver(s)", dead.len());
            failed = true;
        }
    }
    if !eval.clean() && !update_baseline {
        for f in &eval.regressions {
            eprintln!("NEW {f}");
        }
        eprintln!(
            "xtask analyze: {} finding(s) beyond baseline in {} bucket(s) \
             (total {}, baseline-covered {})",
            eval.regressions.len(),
            eval.over.len(),
            eval.findings.len(),
            eval.findings.len() - eval.regressions.len()
        );
        failed = true;
    } else {
        eprintln!(
            "xtask analyze: ratchet holds — {} finding(s), all baseline-covered \
             ({} bucket(s) retired) (workspace {})",
            eval.findings.len(),
            eval.retired.len(),
            root.display()
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs `cmd`, echoing it first; maps spawn failure and non-zero status
/// to a failing exit code.
fn exec(mut cmd: Command) -> ExitCode {
    eprintln!("+ {cmd:?}");
    match cmd.status() {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(s) => {
            eprintln!("command failed: {s}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("failed to spawn: {e}");
            ExitCode::FAILURE
        }
    }
}

fn loom() -> ExitCode {
    // Loom models run only in the dedicated `#![cfg(loom)]` targets —
    // loom's types abort outside `loom::model`, so everything else must
    // stay un-instrumented. Release mode: exhaustive interleaving search
    // is exponential in instruction count. LOOM_MAX_PREEMPTIONS bounds
    // the schedule space (2 is loom's recommended production setting).
    let mut cmd = Command::new("cargo");
    cmd.current_dir(workspace_root())
        .env("RUSTFLAGS", "--cfg loom")
        .env("LOOM_MAX_PREEMPTIONS", "2")
        .args([
            "test",
            "--release",
            "-p",
            "palb-core",
            "--test",
            "loom_models",
            "-p",
            "palb-obs",
            "--test",
            "loom_registry",
            "-p",
            "palb-serve",
            "--test",
            "loom_swap",
        ]);
    exec(cmd)
}

fn miri() -> ExitCode {
    // The leaf crates with the densest pointer/index arithmetic. Miri
    // needs a nightly toolchain with the `miri` component.
    let mut cmd = Command::new("cargo");
    cmd.current_dir(workspace_root())
        .env("MIRIFLAGS", "-Zmiri-strict-provenance")
        .args([
            "+nightly", "miri", "test", "-p", "palb-lp", "-p", "palb-obs", "-p", "palb-tuf",
            "--lib",
        ]);
    exec(cmd)
}

fn tsan() -> ExitCode {
    // ThreadSanitizer over the real (std-atomics) parallel solver: the
    // determinism suite and the branch-and-bound property tests exercise
    // every cross-thread protocol. Needs nightly + build-std so the
    // standard library is instrumented too.
    let mut cmd = Command::new("cargo");
    cmd.current_dir(workspace_root())
        .env("RUSTFLAGS", "-Zsanitizer=thread")
        .args([
            "+nightly",
            "test",
            "-Zbuild-std",
            "--target",
            "x86_64-unknown-linux-gnu",
            "-p",
            "palb-core",
            "--test",
            "parallel_determinism",
            "--test",
            "parallel_bb_proptest",
        ]);
    exec(cmd)
}
