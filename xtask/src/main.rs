// palb:lint-tier = bin
//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//!
//! * `analyze [--report <path>]` — run the project lint engine over the
//!   whole workspace; non-zero exit on any finding. `--report` also
//!   writes the findings to a file (CI uploads it as an artifact).
//! * `loom` — model-check the parallel-solver protocols: runs the
//!   `#![cfg(loom)]` test targets with `RUSTFLAGS="--cfg loom"` in
//!   release mode and bounded preemptions.
//! * `miri` — run the numeric/observability leaf crates under Miri.
//! * `tsan` — run the parallel branch-and-bound suites under
//!   ThreadSanitizer (nightly, `-Z build-std`).
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use xtask::{find_workspace_root, run};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("loom") => loom(),
        Some("miri") => miri(),
        Some("tsan") => tsan(),
        _ => {
            eprintln!("usage: cargo xtask <analyze [--report <path>] | loom | miri | tsan>");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    find_workspace_root(&start).unwrap_or(start)
}

fn analyze(args: &[String]) -> ExitCode {
    let mut report: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => report = it.next().map(PathBuf::from),
            other => {
                eprintln!("unknown analyze flag: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = workspace_root();
    let findings = run(&root);
    let mut body = String::new();
    for f in &findings {
        body.push_str(&f.to_string());
        body.push('\n');
    }
    print!("{body}");
    if let Some(path) = report {
        let header = format!("# cargo xtask analyze — {} finding(s)\n", findings.len());
        if let Err(e) = std::fs::write(&path, format!("{header}{body}")) {
            eprintln!("failed to write report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {}", path.display());
    }
    if findings.is_empty() {
        eprintln!("xtask analyze: clean (workspace {})", root.display());
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask analyze: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Runs `cmd`, echoing it first; maps spawn failure and non-zero status
/// to a failing exit code.
fn exec(mut cmd: Command) -> ExitCode {
    eprintln!("+ {cmd:?}");
    match cmd.status() {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(s) => {
            eprintln!("command failed: {s}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("failed to spawn: {e}");
            ExitCode::FAILURE
        }
    }
}

fn loom() -> ExitCode {
    // Loom models run only in the dedicated `#![cfg(loom)]` targets —
    // loom's types abort outside `loom::model`, so everything else must
    // stay un-instrumented. Release mode: exhaustive interleaving search
    // is exponential in instruction count. LOOM_MAX_PREEMPTIONS bounds
    // the schedule space (2 is loom's recommended production setting).
    let mut cmd = Command::new("cargo");
    cmd.current_dir(workspace_root())
        .env("RUSTFLAGS", "--cfg loom")
        .env("LOOM_MAX_PREEMPTIONS", "2")
        .args([
            "test",
            "--release",
            "-p",
            "palb-core",
            "--test",
            "loom_models",
            "-p",
            "palb-obs",
            "--test",
            "loom_registry",
            "-p",
            "palb-serve",
            "--test",
            "loom_swap",
        ]);
    exec(cmd)
}

fn miri() -> ExitCode {
    // The leaf crates with the densest pointer/index arithmetic. Miri
    // needs a nightly toolchain with the `miri` component.
    let mut cmd = Command::new("cargo");
    cmd.current_dir(workspace_root())
        .env("MIRIFLAGS", "-Zmiri-strict-provenance")
        .args([
            "+nightly", "miri", "test", "-p", "palb-lp", "-p", "palb-obs", "-p", "palb-tuf",
            "--lib",
        ]);
    exec(cmd)
}

fn tsan() -> ExitCode {
    // ThreadSanitizer over the real (std-atomics) parallel solver: the
    // determinism suite and the branch-and-bound property tests exercise
    // every cross-thread protocol. Needs nightly + build-std so the
    // standard library is instrumented too.
    let mut cmd = Command::new("cargo");
    cmd.current_dir(workspace_root())
        .env("RUSTFLAGS", "-Zsanitizer=thread")
        .args([
            "+nightly",
            "test",
            "-Zbuild-std",
            "--target",
            "x86_64-unknown-linux-gnu",
            "-p",
            "palb-core",
            "--test",
            "parallel_determinism",
            "--test",
            "parallel_bb_proptest",
        ]);
    exec(cmd)
}
