//! SARIF 2.1.0 output for `cargo xtask analyze --format sarif`.
//!
//! One run, one driver (`palb-xtask-analyze`), one rule descriptor per
//! [`Rule`], one result per finding. Severity encodes the ratchet
//! verdict: findings in over-budget buckets are `error` (CI fails and
//! GitHub annotates the PR), baseline-covered legacy findings are `note`
//! (visible in the code-scanning UI without blocking). The document is
//! built by hand — key order is deterministic, the schema subset is
//! exactly what `github/codeql-action/upload-sarif` consumes, and the
//! structural invariants are pinned by tests against [`crate::json`].

use std::fmt::Write as _;

use crate::baseline::{self, Evaluation};
use crate::json::escape;
use crate::Rule;

/// The schema the document declares; tests assert the version matches.
pub const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders one analyze evaluation as a SARIF 2.1.0 document.
pub fn render(eval: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"$schema\": \"{SCHEMA}\",");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"palb-xtask-analyze\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/palb/xtask\",\n");
    out.push_str("          \"version\": \"1.0.0\",\n");
    out.push_str("          \"rules\": [\n");
    let last = Rule::ALL.len() - 1;
    for (i, rule) in Rule::ALL.into_iter().enumerate() {
        let _ = write!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            rule.marker(),
            escape(rule.description())
        );
        out.push_str(if i == last { "\n" } else { ",\n" });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let n = eval.findings.len();
    for (i, f) in eval.findings.iter().enumerate() {
        let level = if eval.over.contains_key(&baseline::key(f)) {
            "error"
        } else {
            "note"
        };
        let uri = f.file.to_string_lossy().replace('\\', "/");
        let _ = write!(
            out,
            "        {{\"ruleId\": \"{}\", \"level\": \"{level}\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\
             \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\", \
             \"uriBaseId\": \"SRCROOT\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            f.rule.marker(),
            escape(&f.message),
            escape(&uri),
            f.line
        );
        out.push_str(if i + 1 == n { "\n" } else { ",\n" });
    }
    out.push_str("      ],\n");
    out.push_str(
        "      \"originalUriBaseIds\": {\"SRCROOT\": {\"description\": \
         {\"text\": \"workspace root\"}}}\n",
    );
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::json::{self, Value};
    use crate::{Finding, Rule};
    use std::path::PathBuf;

    fn sample_eval() -> Evaluation {
        let findings = vec![
            Finding {
                file: PathBuf::from("crates/core/src/portfolio.rs"),
                line: 42,
                rule: Rule::Determinism,
                message: "wall clock on the decision path \"x\"".to_owned(),
            },
            Finding {
                file: PathBuf::from("crates/lp/src/simplex.rs"),
                line: 7,
                rule: Rule::PanicPath,
                message: "`[index]` reachable from public API".to_owned(),
            },
        ];
        // Baseline covers the panic-path finding; determinism is new.
        let base = Baseline::from_findings(&findings[1..]);
        Evaluation::new(findings, &base)
    }

    #[test]
    fn document_is_valid_sarif_2_1_0() {
        let doc = json::parse(&render(&sample_eval())).expect("sarif must parse as JSON");
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        assert!(doc
            .get("$schema")
            .and_then(Value::as_str)
            .is_some_and(|s| s.contains("sarif-2.1.0")));
        let runs = doc.get("runs").and_then(Value::as_arr).expect("runs array");
        assert_eq!(runs.len(), 1);
        let driver = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("driver");
        assert_eq!(
            driver.get("name").and_then(Value::as_str),
            Some("palb-xtask-analyze")
        );
        let rules = driver.get("rules").and_then(Value::as_arr).expect("rules");
        assert_eq!(rules.len(), Rule::ALL.len());
        for r in rules {
            assert!(r.get("id").and_then(Value::as_str).is_some());
            assert!(r
                .get("shortDescription")
                .and_then(|d| d.get("text"))
                .and_then(Value::as_str)
                .is_some());
        }
    }

    #[test]
    fn results_carry_location_and_ratchet_level() {
        let doc = json::parse(&render(&sample_eval())).unwrap();
        let results = doc.get("runs").and_then(Value::as_arr).unwrap()[0]
            .get("results")
            .and_then(Value::as_arr)
            .expect("results");
        assert_eq!(results.len(), 2);
        let by_rule = |id: &str| {
            results
                .iter()
                .find(|r| r.get("ruleId").and_then(Value::as_str) == Some(id))
                .expect("result present")
        };
        // New finding → error; baseline-covered → note.
        assert_eq!(
            by_rule("determinism").get("level").and_then(Value::as_str),
            Some("error")
        );
        assert_eq!(
            by_rule("panic-path").get("level").and_then(Value::as_str),
            Some("note")
        );
        let loc = &by_rule("determinism")
            .get("locations")
            .and_then(Value::as_arr)
            .unwrap()[0];
        let phys = loc.get("physicalLocation").expect("physicalLocation");
        assert_eq!(
            phys.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Value::as_str),
            Some("crates/core/src/portfolio.rs")
        );
        assert_eq!(
            phys.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Value::as_num),
            Some(42.0)
        );
    }

    #[test]
    fn empty_result_set_is_still_valid() {
        let eval = Evaluation::new(Vec::new(), &Baseline::default());
        let doc = json::parse(&render(&eval)).unwrap();
        let results = doc.get("runs").and_then(Value::as_arr).unwrap()[0]
            .get("results")
            .and_then(Value::as_arr)
            .unwrap();
        assert!(results.is_empty());
    }
}
