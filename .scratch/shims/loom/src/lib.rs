//! Offline stand-in for the `loom` model checker: `model` runs the
//! closure once on real std primitives instead of exploring
//! interleavings. Exists so the `#![cfg(loom)]` test files compile and
//! smoke-run in this no-network workspace; the real exhaustive
//! exploration happens in CI where the genuine crate is available.

pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }
}

pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Runs `f` once. The real loom runs it once per reachable interleaving.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    f();
}
