//! Shim serde_json: a hand-rolled `Value`, `json!` macro, serializer and
//! parser covering the subset the palb workspace uses (hand-built `Value`
//! trees + round-trip through text). Typed deserialization (`System`,
//! `Trace`, ...) is NOT supported — the crates that need it are CI-only.
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value (numbers are f64, objects are sorted like default
/// serde_json).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}
impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Conversion into `Value` used by `json!` / `to_value`. Implemented
/// by reference so the macro never consumes its operands.
pub trait AsJson {
    fn as_json(&self) -> Value;
}

impl<T: AsJson + ?Sized> AsJson for &T {
    fn as_json(&self) -> Value {
        (**self).as_json()
    }
}
impl AsJson for Value {
    fn as_json(&self) -> Value {
        self.clone()
    }
}
impl AsJson for bool {
    fn as_json(&self) -> Value {
        Value::Bool(*self)
    }
}
impl AsJson for str {
    fn as_json(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl AsJson for String {
    fn as_json(&self) -> Value {
        Value::String(self.clone())
    }
}
impl AsJson for f64 {
    fn as_json(&self) -> Value {
        if self.is_finite() {
            Value::Number(*self)
        } else {
            Value::Null
        }
    }
}
impl AsJson for f32 {
    fn as_json(&self) -> Value {
        (*self as f64).as_json()
    }
}
macro_rules! asjson_int {
    ($($t:ty),*) => {$(
        impl AsJson for $t {
            fn as_json(&self) -> Value { Value::Number(*self as f64) }
        }
    )*};
}
asjson_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl<T: AsJson> AsJson for Option<T> {
    fn as_json(&self) -> Value {
        match self {
            Some(v) => v.as_json(),
            None => Value::Null,
        }
    }
}
impl<T: AsJson> AsJson for Vec<T> {
    fn as_json(&self) -> Value {
        Value::Array(self.iter().map(AsJson::as_json).collect())
    }
}
impl<T: AsJson> AsJson for [T] {
    fn as_json(&self) -> Value {
        Value::Array(self.iter().map(AsJson::as_json).collect())
    }
}

/// `serde_json::to_value` equivalent for the shimmed types.
pub fn to_value<T: AsJson + ?Sized>(v: &T) -> Value {
    v.as_json()
}

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut vec: Vec<$crate::Value> = Vec::new();
        $crate::json_arr!(vec $($tt)*);
        $crate::Value::Array(vec)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map: std::collections::BTreeMap<String, $crate::Value> =
            std::collections::BTreeMap::new();
        $crate::json_obj!(map $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_obj {
    ($map:ident) => {};
    ($map:ident $k:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($k.to_string(), $crate::Value::Null);
        $($crate::json_obj!($map $($rest)*);)?
    };
    ($map:ident $k:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($k.to_string(), $crate::json!({ $($inner)* }));
        $($crate::json_obj!($map $($rest)*);)?
    };
    ($map:ident $k:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($k.to_string(), $crate::json!([ $($inner)* ]));
        $($crate::json_obj!($map $($rest)*);)?
    };
    ($map:ident $k:literal : $v:expr $(, $($rest:tt)*)?) => {
        $map.insert($k.to_string(), $crate::to_value(&$v));
        $($crate::json_obj!($map $($rest)*);)?
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_arr {
    ($vec:ident) => {};
    ($vec:ident null $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::Null);
        $($crate::json_arr!($vec $($rest)*);)?
    };
    ($vec:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!({ $($inner)* }));
        $($crate::json_arr!($vec $($rest)*);)?
    };
    ($vec:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!([ $($inner)* ]));
        $($crate::json_arr!($vec $($rest)*);)?
    };
    ($vec:ident $v:expr $(, $($rest:tt)*)?) => {
        $vec.push($crate::to_value(&$v));
        $($crate::json_arr!($vec $($rest)*);)?
    };
}

/// Serialization / parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for Error {}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: usize, pretty: bool) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => escape(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(item, out, indent + 1, pretty);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, out, indent + 1, pretty);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serialize compactly.
pub fn to_string<T: AsJson + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.as_json(), &mut out, 0, false);
    Ok(out)
}

/// Serialize with 2-space indentation.
pub fn to_string_pretty<T: AsJson + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.as_json(), &mut out, 0, true);
    Ok(out)
}

/// Targets of the shim's `from_str` (only `Value` is parseable).
pub trait FromJson: Sized {
    fn from_json(v: Value) -> Result<Self, Error>;
}
impl FromJson for Value {
    fn from_json(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}

/// Parse a JSON document.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(Error(format!("trailing garbage at byte {}", p.i)));
    }
    T::from_json(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }
    fn eat(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                c as char, self.i
            )))
        }
    }
    fn lit(&mut self, s: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.i)))
        }
    }
    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut a = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Array(a));
                }
                loop {
                    self.ws();
                    a.push(self.value()?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Array(a));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut o = BTreeMap::new();
                self.ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Object(o));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.ws();
                    o.insert(k, self.value()?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Object(o));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.i))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                self.i += 1;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || b".eE+-".contains(&c))
                {
                    self.i += 1;
                }
                let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
                text.parse::<f64>()
                    .map(Value::Number)
                    .map_err(|e| Error(format!("bad number '{text}': {e}")))
            }
            _ => Err(Error(format!("unexpected byte at {}", self.i))),
        }
    }
    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| Error("bad \\u".into()))?;
                            let n = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u".into()))?;
                            s.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| Error("bad utf8".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.i += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }
}
