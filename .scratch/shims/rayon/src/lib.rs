//! Shim rayon: sequential stand-in exposing the iterator entry points the
//! workspace uses. Semantics match rayon for pure per-item maps (which is
//! how the workspace uses it); there is no actual parallelism here.
pub mod prelude {
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        type RefIter: Iterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::RefIter;
    }
    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type RefIter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::RefIter {
            self.iter()
        }
    }
}
