//! No-op Serialize/Deserialize derives: accept `#[serde(...)]` attributes
//! and expand to nothing. Enough to compile crates that only *derive* the
//! traits; anything that actually serializes through serde stays CI-only.
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
