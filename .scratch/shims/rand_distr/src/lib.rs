//! Shim rand_distr: exact inverse-transform / Box-Muller samplers for the
//! distributions the workspace draws from (Exp, LogNormal, Poisson,
//! Pareto).
use rand::Rng;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}
impl std::error::Error for Error {}

pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

#[derive(Clone, Copy, Debug)]
pub struct Exp {
    lambda: f64,
}
impl Exp {
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(Error)
        }
    }
}
impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.gen_range(0.0..1.0);
        -(1.0 - u).ln() / self.lambda
    }
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller (one draw per call; the twin variate is discarded).
    let mut u1 = rng.gen_range(0.0..1.0);
    if u1 <= f64::MIN_POSITIVE {
        u1 = f64::MIN_POSITIVE;
    }
    let u2 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}
impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma >= 0.0 && sigma.is_finite() && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(Error)
        }
    }
}
impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[derive(Clone, Copy, Debug)]
pub struct Poisson {
    mean: f64,
}
impl Poisson {
    pub fn new(mean: f64) -> Result<Self, Error> {
        if mean > 0.0 && mean.is_finite() {
            Ok(Poisson { mean })
        } else {
            Err(Error)
        }
    }
}
impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean < 30.0 {
            // Knuth's product method.
            let l = (-self.mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen_range(0.0..1.0);
                if p <= l {
                    return k as f64;
                }
                k += 1;
            }
        } else {
            // Normal approximation, adequate for workload-scale means.
            let z = standard_normal(rng);
            (self.mean + self.mean.sqrt() * z).round().max(0.0)
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}
impl Pareto {
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if scale > 0.0 && shape > 0.0 {
            Ok(Pareto { scale, shape })
        } else {
            Err(Error)
        }
    }
}
impl Distribution<f64> for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = 1.0 - rng.gen_range(0.0..1.0);
        self.scale * u.powf(-1.0 / self.shape)
    }
}
