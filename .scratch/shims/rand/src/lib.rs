//! Shim rand: splitmix64/xoshiro-style StdRng covering the APIs the
//! workspace uses (`seed_from_u64`, `gen_bool`, f64 `gen_range`).
//! Different stream than real rand — statistical tests still hold,
//! seed-value-exact tests do not (none rely on that in scratch runs).

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait Rng: RngCore {
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
    fn gen_range(&mut self, r: std::ops::Range<f64>) -> f64 {
        r.start + (r.end - r.start) * self.next_f64()
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xorshift64* seeded through splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 2],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            StdRng {
                s: [splitmix64(&mut st), splitmix64(&mut st)],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoroshiro128+
            let s0 = self.s[0];
            let mut s1 = self.s[1];
            let out = s0.wrapping_add(s1);
            s1 ^= s0;
            self.s[0] = s0.rotate_left(55) ^ s1 ^ (s1 << 14);
            self.s[1] = s1.rotate_left(36);
            out
        }
    }
}
